#include "ra/operators.h"

#include <algorithm>

namespace recur::ra {

namespace {

Status CheckColumn(const Relation& r, int column, const char* what) {
  if (column < 0 || column >= r.arity()) {
    return Status::OutOfRange(std::string(what) + ": column " +
                              std::to_string(column) +
                              " out of range for arity " +
                              std::to_string(r.arity()));
  }
  return Status::OK();
}

Status CheckJoinColumns(const Relation& left, const Relation& right,
                        const std::vector<std::pair<int, int>>& on) {
  if (on.empty()) {
    return Status::InvalidArgument("join requires at least one column pair");
  }
  for (const auto& [lc, rc] : on) {
    RECUR_RETURN_IF_ERROR(CheckColumn(left, lc, "join/left"));
    RECUR_RETURN_IF_ERROR(CheckColumn(right, rc, "join/right"));
  }
  return Status::OK();
}

/// Stages a join match into `out`'s arena: all left columns, then right
/// columns that are not join columns. No temporary Tuple is built.
void EmitJoinOutput(Relation* out, TupleRef l, TupleRef r,
                    const std::vector<bool>& right_is_join) {
  Value* dst = out->StageRow();
  dst = std::copy(l.begin(), l.end(), dst);
  for (int i = 0; i < r.arity(); ++i) {
    if (!right_is_join[i]) *dst++ = r[i];
  }
  out->CommitStagedRow();
}

std::vector<bool> RightJoinMask(int right_arity,
                                const std::vector<std::pair<int, int>>& on) {
  std::vector<bool> mask(right_arity, false);
  for (const auto& [lc, rc] : on) {
    (void)lc;
    mask[rc] = true;
  }
  return mask;
}

int JoinOutputArity(const Relation& left, const Relation& right,
                    const std::vector<bool>& right_is_join) {
  int arity = left.arity();
  for (bool is_join : right_is_join) {
    if (!is_join) ++arity;
  }
  return arity;
}

bool RowsMatch(TupleRef l, TupleRef r,
               const std::vector<std::pair<int, int>>& on) {
  for (const auto& [lc, rc] : on) {
    if (l[lc] != r[rc]) return false;
  }
  return true;
}

/// Splits the join condition into the column lists RowsWithKey wants and
/// gathers each left row's key into a reusable buffer. Probing all join
/// columns at once (instead of the first pair plus a residual scan) keeps
/// candidate lists tight when the first column is low-selectivity.
struct KeyProbe {
  std::vector<int> left_cols;
  std::vector<int> right_cols;
  std::vector<Value> key;  // scratch, one slot per join column

  explicit KeyProbe(const std::vector<std::pair<int, int>>& on) {
    left_cols.reserve(on.size());
    right_cols.reserve(on.size());
    for (const auto& [lc, rc] : on) {
      left_cols.push_back(lc);
      right_cols.push_back(rc);
    }
    key.resize(on.size());
  }

  const Value* GatherKey(TupleRef l) {
    for (size_t i = 0; i < left_cols.size(); ++i) key[i] = l[left_cols[i]];
    return key.data();
  }
};

}  // namespace

Result<Relation> Select(const Relation& r, int column, Value v) {
  RECUR_RETURN_IF_ERROR(CheckColumn(r, column, "select"));
  Relation out(r.arity());
  for (int row : r.RowsWithValue(column, v)) {
    out.Insert(r.rows()[row]);
  }
  return out;
}

Result<Relation> SelectIn(const Relation& r, int column,
                          const ValueSet& values) {
  RECUR_RETURN_IF_ERROR(CheckColumn(r, column, "select-in"));
  Relation out(r.arity());
  // Probe whichever side is smaller: the index per value, or scan rows.
  if (values.size() < r.size()) {
    for (Value v : values) {
      for (int row : r.RowsWithValue(column, v)) {
        out.Insert(r.rows()[row]);
      }
    }
  } else {
    for (TupleRef t : r.rows()) {
      if (values.count(t[column]) > 0) out.Insert(t);
    }
  }
  return out;
}

Result<Relation> Project(const Relation& r, const std::vector<int>& columns) {
  for (int c : columns) {
    RECUR_RETURN_IF_ERROR(CheckColumn(r, c, "project"));
  }
  Relation out(static_cast<int>(columns.size()));
  out.Reserve(r.size());
  for (TupleRef t : r.rows()) {
    Value* dst = out.StageRow();
    for (int c : columns) *dst++ = t[c];
    out.CommitStagedRow();
  }
  return out;
}

Result<Relation> Join(const Relation& left, const Relation& right,
                      const std::vector<std::pair<int, int>>& on) {
  RECUR_RETURN_IF_ERROR(CheckJoinColumns(left, right, on));
  std::vector<bool> right_is_join = RightJoinMask(right.arity(), on);
  Relation out(JoinOutputArity(left, right, right_is_join));
  // Hash-probe the right side on the full join key; RowsMatch still runs
  // because candidates are a hash-collision superset.
  KeyProbe probe(on);
  for (TupleRef l : left.rows()) {
    for (int row : right.RowsWithKey(probe.right_cols, probe.GatherKey(l))) {
      TupleRef r = right.rows()[row];
      if (RowsMatch(l, r, on)) {
        EmitJoinOutput(&out, l, r, right_is_join);
      }
    }
  }
  return out;
}

Result<Relation> JoinNestedLoop(const Relation& left, const Relation& right,
                                const std::vector<std::pair<int, int>>& on) {
  RECUR_RETURN_IF_ERROR(CheckJoinColumns(left, right, on));
  std::vector<bool> right_is_join = RightJoinMask(right.arity(), on);
  Relation out(JoinOutputArity(left, right, right_is_join));
  for (TupleRef l : left.rows()) {
    for (TupleRef r : right.rows()) {
      if (RowsMatch(l, r, on)) {
        EmitJoinOutput(&out, l, r, right_is_join);
      }
    }
  }
  return out;
}

Result<Relation> SemiJoin(const Relation& left, const Relation& right,
                          const std::vector<std::pair<int, int>>& on) {
  RECUR_RETURN_IF_ERROR(CheckJoinColumns(left, right, on));
  Relation out(left.arity());
  KeyProbe probe(on);
  for (TupleRef l : left.rows()) {
    for (int row : right.RowsWithKey(probe.right_cols, probe.GatherKey(l))) {
      if (RowsMatch(l, right.rows()[row], on)) {
        out.Insert(l);
        break;
      }
    }
  }
  return out;
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  if (a.arity() != b.arity()) {
    return Status::InvalidArgument("union of relations of different arity");
  }
  Relation out = a;
  out.InsertAll(b);
  return out;
}

Result<Relation> Difference(const Relation& a, const Relation& b) {
  if (a.arity() != b.arity()) {
    return Status::InvalidArgument(
        "difference of relations of different arity");
  }
  Relation out(a.arity());
  for (TupleRef t : a.rows()) {
    if (!b.Contains(t)) out.Insert(t);
  }
  return out;
}

Relation Product(const Relation& a, const Relation& b) {
  Relation out(a.arity() + b.arity());
  out.Reserve(a.size() * b.size());
  for (TupleRef ta : a.rows()) {
    for (TupleRef tb : b.rows()) {
      Value* dst = out.StageRow();
      dst = std::copy(ta.begin(), ta.end(), dst);
      std::copy(tb.begin(), tb.end(), dst);
      out.CommitStagedRow();
    }
  }
  return out;
}

Relation FromValues(const ValueSet& values) {
  Relation out(1);
  out.Reserve(values.size());
  for (Value v : values) out.InsertUnchecked(TupleRef(&v, 1));
  return out;
}

Result<ValueSet> Step(const Relation& r, int from_col, int to_col,
                      const ValueSet& frontier) {
  RECUR_RETURN_IF_ERROR(CheckColumn(r, from_col, "step/from"));
  RECUR_RETURN_IF_ERROR(CheckColumn(r, to_col, "step/to"));
  ValueSet out;
  for (Value v : frontier) {
    for (int row : r.RowsWithValue(from_col, v)) {
      out.insert(r.rows()[row][to_col]);
    }
  }
  return out;
}

}  // namespace recur::ra
