#ifndef RECUR_RA_DATABASE_H_
#define RECUR_RA_DATABASE_H_

#include <memory>
#include <unordered_map>

#include "datalog/program.h"
#include "ra/relation.h"
#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::ra {

/// A database: one Relation per predicate symbol.
///
/// Relations are held through shared_ptr and copied lazily: copying a
/// Database is O(#predicates) — both copies share every relation until one
/// of them asks for mutable access (GetOrCreate / FindMutable / AddFact),
/// at which point just that relation is cloned (copy-on-write detach).
/// This is what makes epoch snapshots cheap for the resident server: a
/// writer forks the current state, detaches only the relations a delta
/// touches, and publishes the fork while readers keep the old snapshot
/// alive through its shared_ptr refcounts.
///
/// Thread-safety: const members are safe to call concurrently with other
/// const members on *any* copy sharing the underlying relations (Relation
/// const reads are internally synchronized). Mutating members require
/// exclusive access to this Database object, but may run concurrently
/// with const access through *other* copies — detach clones the shared
/// relation instead of mutating it in place whenever another copy still
/// references it.
class Database {
 public:
  Database() = default;

  /// Returns the relation for `pred`, creating an empty one of `arity` if
  /// absent. Fails if it exists with a different arity. Detaches a shared
  /// relation: the returned pointer is exclusively owned until this
  /// Database is next copied.
  Result<Relation*> GetOrCreate(SymbolId pred, int arity);

  /// Returns the relation for `pred` or nullptr.
  const Relation* Find(SymbolId pred) const;
  /// Mutable lookup; detaches a shared relation first (see class comment).
  Relation* FindMutable(SymbolId pred);

  /// Inserts one fact.
  Status AddFact(SymbolId pred, Tuple t);

  /// Loads all ground facts of `program` (constants become their SymbolId
  /// values). Non-ground facts are rejected.
  Status LoadFacts(const datalog::Program& program);

  size_t num_relations() const { return relations_.size(); }

  /// Read-only view of all relations (stats aggregation, tools). Values
  /// are never null.
  const std::unordered_map<SymbolId, std::shared_ptr<Relation>>& relations()
      const {
    return relations_;
  }

  /// Total tuples across all relations.
  size_t TotalTuples() const;

  /// Total arena footprint (bytes) across all relations; what the
  /// resource-governed evaluators charge against max_arena_bytes.
  size_t TotalArenaBytes() const;

  /// Distinct values across all relations (the active domain); useful as a
  /// safe level cap for compiled evaluation on cyclic data.
  size_t ActiveDomainSize() const;

 private:
  /// Clones `slot`'s relation if any other Database still shares it.
  static Relation* Detach(std::shared_ptr<Relation>& slot);

  std::unordered_map<SymbolId, std::shared_ptr<Relation>> relations_;
};

}  // namespace recur::ra

#endif  // RECUR_RA_DATABASE_H_
