#ifndef RECUR_RA_DATABASE_H_
#define RECUR_RA_DATABASE_H_

#include <unordered_map>

#include "datalog/program.h"
#include "ra/relation.h"
#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::ra {

/// The extensional database: one Relation per predicate symbol.
class Database {
 public:
  Database() = default;

  /// Returns the relation for `pred`, creating an empty one of `arity` if
  /// absent. Fails if it exists with a different arity.
  Result<Relation*> GetOrCreate(SymbolId pred, int arity);

  /// Returns the relation for `pred` or nullptr.
  const Relation* Find(SymbolId pred) const;
  Relation* FindMutable(SymbolId pred);

  /// Inserts one fact.
  Status AddFact(SymbolId pred, Tuple t);

  /// Loads all ground facts of `program` (constants become their SymbolId
  /// values). Non-ground facts are rejected.
  Status LoadFacts(const datalog::Program& program);

  size_t num_relations() const { return relations_.size(); }

  /// Read-only view of all relations (stats aggregation, tools).
  const std::unordered_map<SymbolId, Relation>& relations() const {
    return relations_;
  }

  /// Total tuples across all relations.
  size_t TotalTuples() const;

  /// Total arena footprint (bytes) across all relations; what the
  /// resource-governed evaluators charge against max_arena_bytes.
  size_t TotalArenaBytes() const;

  /// Distinct values across all relations (the active domain); useful as a
  /// safe level cap for compiled evaluation on cyclic data.
  size_t ActiveDomainSize() const;

 private:
  std::unordered_map<SymbolId, Relation> relations_;
};

}  // namespace recur::ra

#endif  // RECUR_RA_DATABASE_H_
