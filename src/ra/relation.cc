#include "ra/relation.h"

#include <algorithm>

namespace recur::ra {

namespace {
const std::vector<int> kEmptyRowList;
}  // namespace

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  // Drop the indexes before touching the rows: with incremental
  // maintenance a built index that survived past this point would keep
  // pointing at the *old* rows while rows_ already holds the new ones.
  indexes_.clear();
  arity_ = other.arity_;
  indexes_.resize(arity_);
  rows_ = other.rows_;
  row_set_ = other.row_set_;
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      rows_(std::move(other.rows_)),
      row_set_(std::move(other.row_set_)),
      indexes_(std::move(other.indexes_)) {
  index_rebuilds_.store(
      other.index_rebuilds_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  arity_ = other.arity_;
  rows_ = std::move(other.rows_);
  row_set_ = std::move(other.row_set_);
  indexes_ = std::move(other.indexes_);
  index_rebuilds_.store(
      other.index_rebuilds_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

void Relation::Reserve(size_t n) {
  rows_.reserve(n);
  row_set_.reserve(n);
}

bool Relation::Insert(const Tuple& t) {
  Tuple copy = t;
  return Insert(std::move(copy));
}

bool Relation::Insert(Tuple&& t) {
  if (static_cast<int>(t.size()) != arity_) return false;
  auto [it, inserted] = row_set_.insert(std::move(t));
  if (!inserted) return false;
  rows_.push_back(*it);
  AppendToIndexes(static_cast<int>(rows_.size()) - 1);
  return true;
}

size_t Relation::InsertAll(const Relation& other) {
  size_t added = 0;
  Reserve(rows_.size() + other.rows_.size());
  for (const Tuple& t : other.rows_) {
    if (Insert(t)) ++added;
  }
  return added;
}

void Relation::AppendToIndexes(int row) {
  for (int c = 0; c < arity_; ++c) {
    ColumnIndex& index = indexes_[c];
    if (!index.built.load(std::memory_order_relaxed)) continue;
    index.map[rows_[row][c]].push_back(row);
  }
}

void Relation::EnsureIndex(int column) const {
  const ColumnIndex& index = indexes_[column];
  if (index.built.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mutex_);
  ColumnIndex& mutable_index = indexes_[column];
  if (mutable_index.built.load(std::memory_order_relaxed)) return;
  mutable_index.map.clear();
  for (int i = 0; i < static_cast<int>(rows_.size()); ++i) {
    mutable_index.map[rows_[i][column]].push_back(i);
  }
  index_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  mutable_index.built.store(true, std::memory_order_release);
}

const std::vector<int>& Relation::RowsWithValue(int column, Value v) const {
  if (column < 0 || column >= arity_) return kEmptyRowList;
  EnsureIndex(column);
  auto it = indexes_[column].map.find(v);
  return it == indexes_[column].map.end() ? kEmptyRowList : it->second;
}

ValueSet Relation::ColumnValues(int column) const {
  ValueSet out;
  if (column < 0 || column >= arity_) return out;
  for (const Tuple& t : rows_) out.insert(t[column]);
  return out;
}

void Relation::Clear() {
  rows_.clear();
  row_set_.clear();
  for (ColumnIndex& index : indexes_) {
    index.map.clear();
    index.built.store(false, std::memory_order_relaxed);
  }
}

std::string Relation::ToString() const {
  std::vector<Tuple> sorted = rows_;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(";
    for (size_t j = 0; j < sorted[i].size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(sorted[i][j]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

}  // namespace recur::ra
