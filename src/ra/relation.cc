#include "ra/relation.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/fault_injection.h"

namespace recur::ra {

namespace {
const std::vector<int> kEmptyRowList;

/// Hash of a single-column key; must agree with HashValueSpan(&v, 1) so
/// the point and batched probe paths address the same buckets.
inline uint64_t HashSingle(Value v) { return HashValueMix(kHashSeed, v); }
}  // namespace

const std::vector<int>* Relation::KeyBuckets::Find(uint64_t hash, Value key,
                                                   bool exact) const {
  if (buckets.empty()) return nullptr;
  const size_t mask = buckets.size() - 1;
  for (size_t s = hash & mask;; s = (s + 1) & mask) {
    const Bucket& b = buckets[s];
    if (b.rows.empty()) return nullptr;
    if (b.hash == hash && (!exact || b.key == key)) return &b.rows;
  }
}

std::vector<int>* Relation::KeyBuckets::FindOrInsert(uint64_t hash, Value key,
                                                     bool exact) {
  if (buckets.empty() || (used + 1) * 4 > buckets.size() * 3) Grow();
  const size_t mask = buckets.size() - 1;
  for (size_t s = hash & mask;; s = (s + 1) & mask) {
    Bucket& b = buckets[s];
    if (b.rows.empty()) {
      b.hash = hash;
      b.key = key;
      ++used;
      BloomAdd(hash);
      return &b.rows;
    }
    if (b.hash == hash && (!exact || b.key == key)) return &b.rows;
  }
}

void Relation::KeyBuckets::Grow() {
  // Power-of-two bucket array kept at <= 75% load; the Bloom filter is
  // rebuilt at 8 bits per bucket (~10 bits per key at max load), which
  // with two probe positions keeps the false-positive rate a few percent.
  const size_t want = buckets.empty() ? 16 : buckets.size() * 2;
  std::vector<Bucket> old = std::move(buckets);
  buckets.assign(want, Bucket{});
  bloom.assign(std::max<size_t>(8, want / 8), 0);
  const size_t mask = want - 1;
  for (Bucket& b : old) {
    if (b.rows.empty()) continue;
    size_t s = b.hash & mask;
    while (!buckets[s].rows.empty()) s = (s + 1) & mask;
    BloomAdd(b.hash);
    buckets[s] = std::move(b);
  }
}

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      num_rows_(other.num_rows_),
      arena_(other.arena_),
      slots_(other.slots_) {
  // The staged (uncommitted) row, if any, is not part of the relation.
  arena_.resize(num_rows_ * arity_);
  indexes_.resize(arity_);
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  // Drop the indexes before touching the rows: with incremental
  // maintenance a built index that survived past this point would keep
  // pointing at the *old* rows while the arena already holds the new ones.
  indexes_.clear();
  for (auto& slot : multi_indexes_) slot.reset();
  multi_count_.store(0, std::memory_order_relaxed);
  for (auto& slot : sorted_indexes_) slot.reset();
  sorted_count_.store(0, std::memory_order_relaxed);
  arity_ = other.arity_;
  indexes_.resize(arity_);
  num_rows_ = other.num_rows_;
  arena_ = other.arena_;
  arena_.resize(num_rows_ * arity_);
  slots_ = other.slots_;
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      num_rows_(other.num_rows_),
      arena_(std::move(other.arena_)),
      slots_(std::move(other.slots_)),
      indexes_(std::move(other.indexes_)),
      multi_indexes_(std::move(other.multi_indexes_)),
      sorted_indexes_(std::move(other.sorted_indexes_)) {
  other.num_rows_ = 0;
  multi_count_.store(other.multi_count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  other.multi_count_.store(0, std::memory_order_relaxed);
  sorted_count_.store(other.sorted_count_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  other.sorted_count_.store(0, std::memory_order_relaxed);
  index_rebuilds_.store(
      other.index_rebuilds_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  arity_ = other.arity_;
  num_rows_ = other.num_rows_;
  arena_ = std::move(other.arena_);
  slots_ = std::move(other.slots_);
  indexes_ = std::move(other.indexes_);
  multi_indexes_ = std::move(other.multi_indexes_);
  multi_count_.store(other.multi_count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  other.multi_count_.store(0, std::memory_order_relaxed);
  sorted_indexes_ = std::move(other.sorted_indexes_);
  sorted_count_.store(other.sorted_count_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  other.sorted_count_.store(0, std::memory_order_relaxed);
  other.num_rows_ = 0;
  index_rebuilds_.store(
      other.index_rebuilds_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

void Relation::Reserve(size_t n) {
  util::FaultInjector::CheckNoStatus("ra.relation.reserve");
  arena_.reserve(n * arity_);
  if (n > 0) GrowSlots(n);
}

size_t Relation::ArenaBytes() const {
  return arena_.capacity() * sizeof(Value) +
         slots_.capacity() * sizeof(uint32_t);
}

void Relation::GrowSlots(size_t min_rows) {
  // Power-of-two table kept at <= 75% load: want * 3 >= min_rows * 4.
  size_t want = 16;
  while (want * 3 < min_rows * 4) want <<= 1;
  if (want <= slots_.size()) return;
  slots_.assign(want, kEmptySlot);
  const size_t mask = want - 1;
  for (size_t row = 0; row < num_rows_; ++row) {
    size_t s = HashRow(row) & mask;
    while (slots_[s] != kEmptySlot) s = (s + 1) & mask;
    slots_[s] = static_cast<uint32_t>(row);
  }
}

Value* Relation::StageRow() {
  arena_.resize((num_rows_ + 1) * arity_);
  return arena_.data() + num_rows_ * arity_;
}

bool Relation::CommitStagedRow() {
  if (slots_.empty() || (num_rows_ + 1) * 4 > slots_.size() * 3) {
    GrowSlots(num_rows_ + 1);
  }
  const TupleRef staged = RowAt(num_rows_);
  const uint64_t h = HashValueSpan(staged.data(), staged.size());
  const size_t mask = slots_.size() - 1;
  for (size_t s = h & mask;; s = (s + 1) & mask) {
    const uint32_t row = slots_[s];
    if (row == kEmptySlot) {
      slots_[s] = static_cast<uint32_t>(num_rows_);
      AppendToIndexes(num_rows_);
      ++num_rows_;
      return true;
    }
    if (RowAt(row) == staged) {
      arena_.resize(num_rows_ * arity_);  // discard the duplicate
      return false;
    }
  }
}

void Relation::CommitStagedRowUnchecked() {
  if (slots_.empty() || (num_rows_ + 1) * 4 > slots_.size() * 3) {
    GrowSlots(num_rows_ + 1);
  }
  const size_t mask = slots_.size() - 1;
  size_t s = HashRow(num_rows_) & mask;
  while (slots_[s] != kEmptySlot) s = (s + 1) & mask;
  slots_[s] = static_cast<uint32_t>(num_rows_);
  AppendToIndexes(num_rows_);
  ++num_rows_;
}

void Relation::CopyIntoStaging(TupleRef t) {
  const Value* src = t.data();
  // StageRow may reallocate the arena; if `t` views one of our own rows,
  // re-derive the pointer afterwards instead of reading freed memory.
  size_t self_offset = static_cast<size_t>(-1);
  if (!arena_.empty() && src >= arena_.data() &&
      src < arena_.data() + arena_.size()) {
    self_offset = static_cast<size_t>(src - arena_.data());
  }
  Value* dst = StageRow();
  if (self_offset != static_cast<size_t>(-1)) {
    src = arena_.data() + self_offset;
  }
  std::copy(src, src + arity_, dst);
}

bool Relation::Insert(TupleRef t) {
  if (t.arity() != arity_) return false;
  CopyIntoStaging(t);
  return CommitStagedRow();
}

bool Relation::InsertUnchecked(TupleRef t) {
  if (t.arity() != arity_) return false;
  CopyIntoStaging(t);
  CommitStagedRowUnchecked();
  return true;
}

size_t Relation::InsertBatch(const Value* rows, size_t n) {
  if (n == 0 || arity_ == 0) {
    // Arity-0 relations hold at most the one empty tuple; fall back to the
    // point path, which handles that degenerate dedup correctly.
    size_t added = 0;
    for (size_t i = 0; i < n; ++i) {
      if (Insert(TupleRef(rows, 0))) ++added;
    }
    return added;
  }
  // Drop any abandoned staged row so appends land at num_rows_. Appends
  // below rely on vector::insert's geometric growth — an exact-size
  // reserve here would force a reallocation per batch.
  arena_.resize(num_rows_ * arity_);
  thread_local std::vector<uint64_t> hashes;
  hashes.resize(n);
  HashKeysBatch(rows, n, static_cast<size_t>(arity_), hashes.data());
  if (slots_.empty() || (num_rows_ + n) * 4 > slots_.size() * 3) {
    GrowSlots(num_rows_ + n);
  }
  const size_t mask = slots_.size() - 1;
  constexpr size_t kAhead = 8;
  size_t added = 0;
  for (size_t i = 0; i < n; ++i) {
#if defined(__GNUC__) || defined(__clang__)
    if (i + kAhead < n) {
      __builtin_prefetch(&slots_[hashes[i + kAhead] & mask]);
    }
#endif
    const Value* row = rows + i * static_cast<size_t>(arity_);
    size_t s = hashes[i] & mask;
    bool duplicate = false;
    for (;; s = (s + 1) & mask) {
      const uint32_t r = slots_[s];
      if (r == kEmptySlot) break;
      if (std::equal(row, row + arity_,
                     arena_.data() + static_cast<size_t>(r) * arity_)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    arena_.insert(arena_.end(), row, row + arity_);
    slots_[s] = static_cast<uint32_t>(num_rows_);
    AppendToIndexes(num_rows_);
    ++num_rows_;
    ++added;
  }
  return added;
}

size_t Relation::InsertAll(const Relation& other) {
  if (&other == this) return 0;  // every row is already present
  if (other.arity_ != arity_) return 0;
  Reserve(num_rows_ + other.num_rows_);
  return InsertBatch(other.arena_.data(), other.num_rows_);
}

bool Relation::Contains(TupleRef t) const {
  return FindRow(t) != static_cast<size_t>(-1);
}

size_t Relation::FindRow(TupleRef t) const {
  if (t.arity() != arity_ || slots_.empty()) return static_cast<size_t>(-1);
  const uint64_t h = HashValueSpan(t.data(), t.size());
  const size_t mask = slots_.size() - 1;
  for (size_t s = h & mask;; s = (s + 1) & mask) {
    const uint32_t row = slots_[s];
    if (row == kEmptySlot) return static_cast<size_t>(-1);
    if (RowAt(row) == t) return row;
  }
}

bool Relation::Erase(TupleRef t) {
  const size_t row = FindRow(t);
  if (row == static_cast<size_t>(-1)) return false;
  std::vector<char> dead(num_rows_, 0);
  dead[row] = 1;
  CompactAfterErase(dead, 1);
  return true;
}

size_t Relation::EraseRows(const Relation& victims) {
  if (victims.arity_ != arity_ || num_rows_ == 0 || victims.empty()) {
    return 0;
  }
  util::FaultInjector::CheckNoStatus("ra.relation.erase");
  std::vector<char> dead(num_rows_, 0);
  size_t n_dead = 0;
  for (TupleRef t : victims.rows()) {
    const size_t row = FindRow(t);
    if (row != static_cast<size_t>(-1) && !dead[row]) {
      dead[row] = 1;
      ++n_dead;
    }
  }
  if (n_dead == 0) return 0;
  CompactAfterErase(dead, n_dead);
  return n_dead;
}

void Relation::CompactAfterErase(const std::vector<char>& dead,
                                 size_t n_dead) {
  // Compact survivors toward the front, preserving insertion order.
  size_t out = 0;
  for (size_t row = 0; row < num_rows_; ++row) {
    if (dead[row]) continue;
    if (out != row) {
      std::copy(arena_.begin() + row * arity_,
                arena_.begin() + (row + 1) * arity_,
                arena_.begin() + out * arity_);
    }
    ++out;
  }
  num_rows_ -= n_dead;
  arena_.resize(num_rows_ * arity_);
  // Row ids shifted: rebuild the dedup table and drop every index so the
  // next probe rebuilds against the surviving rows only.
  slots_.clear();
  if (num_rows_ > 0) GrowSlots(num_rows_);
  for (ColumnIndex& index : indexes_) {
    index.table = KeyBuckets();
    index.built.store(false, std::memory_order_relaxed);
  }
  for (auto& slot : multi_indexes_) slot.reset();
  multi_count_.store(0, std::memory_order_relaxed);
  for (auto& slot : sorted_indexes_) slot.reset();
  sorted_count_.store(0, std::memory_order_relaxed);
}

void Relation::AppendToIndexes(size_t row) {
  for (int c = 0; c < arity_; ++c) {
    ColumnIndex& index = indexes_[c];
    if (!index.built.load(std::memory_order_relaxed)) continue;
    const Value v = arena_[row * arity_ + c];
    index.table.FindOrInsert(HashSingle(v), v, /*exact=*/true)
        ->push_back(static_cast<int>(row));
  }
  const size_t count = multi_count_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < count; ++i) {
    MultiIndex& index = *multi_indexes_[i];
    const uint64_t h = HashRowKey(row, index.columns);
    index.table.FindOrInsert(h, 0, /*exact=*/false)
        ->push_back(static_cast<int>(row));
  }
  const size_t sorted = sorted_count_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < sorted; ++i) {
    SortedIndex& index = *sorted_indexes_[i];
    index.tail.emplace_back(HashRowKey(row, index.columns),
                            static_cast<int>(row));
    // Fold the tail back into the sorted run before probes degrade to
    // linear scans. We are in a mutation (exclusive access), so no
    // concurrent reader can observe the merge.
    if (index.tail.size() > 256) {
      std::sort(index.tail.begin(), index.tail.end());
      const size_t mid = index.entries.size();
      index.entries.insert(index.entries.end(), index.tail.begin(),
                           index.tail.end());
      std::inplace_merge(index.entries.begin(), index.entries.begin() + mid,
                         index.entries.end());
      index.tail.clear();
    }
  }
}

uint64_t Relation::HashRowKey(size_t row,
                              const std::vector<int>& columns) const {
  uint64_t h = kHashSeed;
  const Value* base = arena_.data() + row * arity_;
  for (int c : columns) h = HashValueMix(h, base[c]);
  return h;
}

const Relation::MultiIndex* Relation::EnsureMultiIndex(
    const std::vector<int>& columns) const {
  // Fast path: scan published entries lock-free.
  size_t count = multi_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    if (multi_indexes_[i]->columns == columns) return multi_indexes_[i].get();
  }
  std::lock_guard<std::mutex> lock(index_mutex_);
  count = multi_count_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < count; ++i) {
    if (multi_indexes_[i]->columns == columns) return multi_indexes_[i].get();
  }
  if (count == kMaxMultiIndexes) return nullptr;
  auto index = std::make_unique<MultiIndex>();
  index->columns = columns;
  for (size_t row = 0; row < num_rows_; ++row) {
    index->table.FindOrInsert(HashRowKey(row, columns), 0, /*exact=*/false)
        ->push_back(static_cast<int>(row));
  }
  multi_indexes_[count] = std::move(index);
  index_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  // Publish after the slot is fully written so lock-free readers that see
  // the bumped count see a complete index.
  multi_count_.store(count + 1, std::memory_order_release);
  return multi_indexes_[count].get();
}

const std::vector<int>& Relation::RowsWithKey(const std::vector<int>& columns,
                                              const Value* key) const {
  if (columns.empty()) return kEmptyRowList;
  for (int c : columns) {
    if (c < 0 || c >= arity_) return kEmptyRowList;
  }
  if (columns.size() == 1) return RowsWithValue(columns[0], key[0]);
  const MultiIndex* index = EnsureMultiIndex(columns);
  if (index == nullptr) {
    // Slot array full: a first-column probe is still a valid candidate
    // superset under the verify-equality contract.
    return RowsWithValue(columns[0], key[0]);
  }
  const uint64_t h = HashValueSpan(key, columns.size());
  if (!index->table.MayContain(h)) return kEmptyRowList;
  const std::vector<int>* rows = index->table.Find(h, 0, /*exact=*/false);
  return rows == nullptr ? kEmptyRowList : *rows;
}

void Relation::EnsureIndex(int column) const {
  const ColumnIndex& index = indexes_[column];
  if (index.built.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mutex_);
  ColumnIndex& mutable_index = indexes_[column];
  if (mutable_index.built.load(std::memory_order_relaxed)) return;
  mutable_index.table = KeyBuckets();
  for (size_t i = 0; i < num_rows_; ++i) {
    const Value v = arena_[i * arity_ + column];
    mutable_index.table.FindOrInsert(HashSingle(v), v, /*exact=*/true)
        ->push_back(static_cast<int>(i));
  }
  index_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  mutable_index.built.store(true, std::memory_order_release);
}

const std::vector<int>& Relation::RowsWithValue(int column, Value v) const {
  if (column < 0 || column >= arity_) return kEmptyRowList;
  EnsureIndex(column);
  const KeyBuckets& table = indexes_[column].table;
  const uint64_t h = HashSingle(v);
  if (!table.MayContain(h)) return kEmptyRowList;
  const std::vector<int>* rows = table.Find(h, v, /*exact=*/true);
  return rows == nullptr ? kEmptyRowList : *rows;
}

void Relation::HashKeysBatch(const Value* keys, size_t lanes, size_t width,
                             uint64_t* out) {
  if (width == 1) {
    for (size_t l = 0; l < lanes; ++l) out[l] = HashSingle(keys[l]);
    return;
  }
  for (size_t l = 0; l < lanes; ++l) {
    out[l] = HashValueSpan(keys + l * width, width);
  }
}

size_t Relation::ProbeBatch(const std::vector<int>& columns, const Value* keys,
                            size_t lanes, const std::vector<int>** out) const {
  for (size_t l = 0; l < lanes; ++l) out[l] = nullptr;
  const size_t width = columns.size();
  if (width == 0 || lanes == 0) return 0;
  for (int c : columns) {
    if (c < 0 || c >= arity_) return 0;
  }

  // Resolve the table (building it lazily) and, for wide keys past the
  // composite-slot cap, fall back to a first-column candidate probe — the
  // same superset contract as RowsWithKey.
  const KeyBuckets* table = nullptr;
  bool exact = false;
  size_t key_stride = width;
  const Value* key_base = keys;
  thread_local std::vector<Value> fallback_keys;
  if (width == 1) {
    EnsureIndex(columns[0]);
    table = &indexes_[columns[0]].table;
    exact = true;
  } else {
    const MultiIndex* index = EnsureMultiIndex(columns);
    if (index != nullptr) {
      table = &index->table;
    } else {
      // Gather the first key column and probe its single-column index.
      fallback_keys.resize(lanes);
      for (size_t l = 0; l < lanes; ++l) fallback_keys[l] = keys[l * width];
      EnsureIndex(columns[0]);
      table = &indexes_[columns[0]].table;
      exact = true;
      key_stride = 1;
      key_base = fallback_keys.data();
    }
  }

  // Pass 1: batched FNV hashing of the key columns.
  thread_local std::vector<uint64_t> hashes;
  hashes.resize(lanes);
  if (key_stride == 1) {
    for (size_t l = 0; l < lanes; ++l) hashes[l] = HashSingle(key_base[l]);
  } else {
    HashKeysBatch(key_base, lanes, key_stride, hashes.data());
  }

  // Pass 2: Bloom test every lane; prefetch the home bucket of survivors
  // so pass 3's probes overlap their memory latency.
  thread_local std::vector<char> skip;
  skip.assign(lanes, 0);
  size_t skipped = 0;
  for (size_t l = 0; l < lanes; ++l) {
    if (!table->MayContain(hashes[l])) {
      skip[l] = 1;
      ++skipped;
    } else {
      table->Prefetch(hashes[l]);
    }
  }

  // Pass 3: resolve surviving buckets.
  for (size_t l = 0; l < lanes; ++l) {
    if (skip[l]) continue;
    out[l] = exact ? table->Find(hashes[l], key_base[l * key_stride], true)
                   : table->Find(hashes[l], 0, false);
  }
  return skipped;
}

void Relation::GatherColumn(const int* row_ids, size_t n, int column,
                            Value* out) const {
  const Value* base = arena_.data() + column;
  for (size_t i = 0; i < n; ++i) {
    out[i] = base[static_cast<size_t>(row_ids[i]) * arity_];
  }
}

const Relation::SortedIndex* Relation::EnsureSortedIndex(
    const std::vector<int>& columns) const {
  if (columns.empty()) return nullptr;
  for (int c : columns) {
    if (c < 0 || c >= arity_) return nullptr;
  }
  size_t count = sorted_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    if (sorted_indexes_[i]->columns == columns) {
      return sorted_indexes_[i].get();
    }
  }
  std::lock_guard<std::mutex> lock(index_mutex_);
  count = sorted_count_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < count; ++i) {
    if (sorted_indexes_[i]->columns == columns) {
      return sorted_indexes_[i].get();
    }
  }
  if (count == kMaxSortedIndexes) return nullptr;
  auto index = std::make_unique<SortedIndex>();
  index->columns = columns;
  index->entries.reserve(num_rows_);
  for (size_t row = 0; row < num_rows_; ++row) {
    index->entries.emplace_back(HashRowKey(row, columns),
                                static_cast<int>(row));
  }
  std::sort(index->entries.begin(), index->entries.end());
  sorted_indexes_[count] = std::move(index);
  index_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  // Publish after the slot is fully written (see EnsureMultiIndex).
  sorted_count_.store(count + 1, std::memory_order_release);
  return sorted_indexes_[count].get();
}

void Relation::SortedCandidates(const SortedIndex& index, uint64_t key_hash,
                                std::vector<int>* out) const {
  auto lo = std::lower_bound(
      index.entries.begin(), index.entries.end(),
      std::make_pair(key_hash, std::numeric_limits<int>::min()));
  for (; lo != index.entries.end() && lo->first == key_hash; ++lo) {
    out->push_back(lo->second);
  }
  for (const auto& [hash, row] : index.tail) {
    if (hash == key_hash) out->push_back(row);
  }
}

ValueSet Relation::ColumnValues(int column) const {
  ValueSet out;
  if (column < 0 || column >= arity_) return out;
  for (size_t i = 0; i < num_rows_; ++i) {
    out.insert(arena_[i * arity_ + column]);
  }
  return out;
}

void Relation::Clear() {
  num_rows_ = 0;
  arena_.clear();
  slots_.clear();
  for (ColumnIndex& index : indexes_) {
    index.table = KeyBuckets();
    index.built.store(false, std::memory_order_relaxed);
  }
  for (auto& slot : multi_indexes_) slot.reset();
  multi_count_.store(0, std::memory_order_relaxed);
  for (auto& slot : sorted_indexes_) slot.reset();
  sorted_count_.store(0, std::memory_order_relaxed);
}

std::string Relation::ToString() const {
  std::vector<size_t> order(num_rows_);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [this](size_t a, size_t b) { return RowAt(a) < RowAt(b); });
  std::string out = "{";
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(";
    TupleRef row = RowAt(order[i]);
    for (int j = 0; j < row.arity(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(row[j]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

}  // namespace recur::ra
