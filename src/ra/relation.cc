#include "ra/relation.h"

#include <algorithm>

namespace recur::ra {

namespace {
const std::vector<int> kEmptyRowList;
}  // namespace

bool Relation::Insert(const Tuple& t) {
  Tuple copy = t;
  return Insert(std::move(copy));
}

bool Relation::Insert(Tuple&& t) {
  if (static_cast<int>(t.size()) != arity_) return false;
  auto [it, inserted] = row_set_.insert(std::move(t));
  if (!inserted) return false;
  rows_.push_back(*it);
  indexes_.clear();  // invalidate lazy indexes
  return true;
}

size_t Relation::InsertAll(const Relation& other) {
  size_t added = 0;
  for (const Tuple& t : other.rows_) {
    if (Insert(t)) ++added;
  }
  return added;
}

void Relation::EnsureIndex(int column) const {
  if (indexes_.empty()) {
    indexes_.resize(arity_);
  }
  ColumnIndex& index = indexes_[column];
  if (index.built) return;
  index.map.clear();
  for (int i = 0; i < static_cast<int>(rows_.size()); ++i) {
    index.map[rows_[i][column]].push_back(i);
  }
  index.built = true;
}

const std::vector<int>& Relation::RowsWithValue(int column, Value v) const {
  if (column < 0 || column >= arity_) return kEmptyRowList;
  EnsureIndex(column);
  auto it = indexes_[column].map.find(v);
  return it == indexes_[column].map.end() ? kEmptyRowList : it->second;
}

ValueSet Relation::ColumnValues(int column) const {
  ValueSet out;
  if (column < 0 || column >= arity_) return out;
  for (const Tuple& t : rows_) out.insert(t[column]);
  return out;
}

void Relation::Clear() {
  rows_.clear();
  row_set_.clear();
  indexes_.clear();
}

std::string Relation::ToString() const {
  std::vector<Tuple> sorted = rows_;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(";
    for (size_t j = 0; j < sorted[i].size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(sorted[i][j]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

}  // namespace recur::ra
