#ifndef RECUR_RA_SERIALIZE_H_
#define RECUR_RA_SERIALIZE_H_

#include "ra/database.h"
#include "ra/relation.h"
#include "util/io.h"
#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::ra {

/// Relation wire-format version; DeserializeRelation rejects any other
/// version with kUnsupported. Bumped whenever the row encoding changes.
inline constexpr uint32_t kRelationFormatVersion = 1;

/// Widest arity DeserializeRelation accepts. Far beyond any real program
/// (rule heads have a handful of columns), but small enough that a corrupt
/// value can neither wrap size arithmetic nor turn negative when cast to
/// the int arity Relation uses.
inline constexpr uint32_t kMaxRelationArity = 1u << 16;

/// Appends `rel` to `out` as
///
///   [format u32] [arity u32] [num_rows u64] [num_rows * arity values i64]
///
/// Only committed rows are written (a staged-but-uncommitted row never
/// reaches the rows() view, so it is excluded by construction). The row
/// order is the arena order, which is deterministic for a given insert
/// history.
void SerializeRelation(const Relation& rel, util::io::ByteWriter* out);

/// Decodes a relation written by SerializeRelation. An unknown format
/// version is kUnsupported; a truncated or internally inconsistent body is
/// kDataLoss. Column indexes are not persisted — the first keyed probe
/// after load rebuilds them lazily, exactly as after a bulk load.
Result<Relation> DeserializeRelation(util::io::ByteReader* in);

/// Appends the symbol table as [count u32] [name string x count], names in
/// id order (1..count). Dense ids make the position the id.
void SerializeSymbols(const SymbolTable& symbols, util::io::ByteWriter* out);

/// Re-interns the persisted names into `symbols` and verifies each lands
/// on the id it was saved under. Works for a fresh table and for the very
/// table the snapshot was taken from; any other pre-populated table drifts
/// the ids and fails with kUnsupported (persisted SymbolIds would silently
/// mean different names).
Status DeserializeSymbols(util::io::ByteReader* in, SymbolTable* symbols);

/// Appends `db` as [count u32] [name string + relation blob x count], with
/// relations sorted by predicate name so identical databases serialize to
/// identical bytes regardless of hash-map iteration order.
Status SerializeDatabase(const Database& db, const SymbolTable& symbols,
                         util::io::ByteWriter* out);

/// Decodes a database written by SerializeDatabase, interning predicate
/// names through `symbols`.
Result<Database> DeserializeDatabase(util::io::ByteReader* in,
                                     SymbolTable* symbols);

}  // namespace recur::ra

#endif  // RECUR_RA_SERIALIZE_H_
