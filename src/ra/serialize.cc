#include "ra/serialize.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace recur::ra {

void SerializeRelation(const Relation& rel, util::io::ByteWriter* out) {
  out->PutU32(kRelationFormatVersion);
  out->PutU32(static_cast<uint32_t>(rel.arity()));
  out->PutU64(rel.size());
  for (TupleRef row : rel.rows()) {
    for (Value v : row) out->PutI64(v);
  }
}

Result<Relation> DeserializeRelation(util::io::ByteReader* in) {
  uint32_t format = 0, arity = 0;
  uint64_t num_rows = 0;
  RECUR_RETURN_IF_ERROR(in->GetU32(&format));
  if (format != kRelationFormatVersion) {
    return Status::Unsupported(
        "relation format version " + std::to_string(format) +
        " is not supported (expected " +
        std::to_string(kRelationFormatVersion) + ")");
  }
  RECUR_RETURN_IF_ERROR(in->GetU32(&arity));
  RECUR_RETURN_IF_ERROR(in->GetU64(&num_rows));
  // Bound-check the declared geometry against the bytes actually present
  // before reserving anything, so corrupt counts cannot trigger a huge
  // allocation. An arity-0 relation is a set of empty tuples: at most one.
  if (arity == 0 && num_rows > 1) {
    return Status::DataLoss("arity-0 relation declares " +
                            std::to_string(num_rows) + " rows");
  }
  // Reject implausible arities before any arithmetic or construction: a
  // corrupt value near 2^32 would wrap `8 * arity` in 32-bit arithmetic
  // (divide-by-zero below) and cast to a negative int for Relation().
  if (arity > kMaxRelationArity) {
    return Status::DataLoss("relation declares implausible arity " +
                            std::to_string(arity));
  }
  // The row-count bound is computed in 64-bit on purpose: kMaxRelationArity
  // keeps uint64_t{8} * arity far from wrapping.
  if (arity > 0 &&
      num_rows > in->remaining() / (uint64_t{8} * arity)) {
    return Status::DataLoss(
        "relation declares " + std::to_string(num_rows) + " rows of arity " +
        std::to_string(arity) + " but the payload is shorter");
  }
  Relation rel(static_cast<int>(arity));
  rel.Reserve(num_rows);
  std::vector<Value> row(arity);
  for (uint64_t i = 0; i < num_rows; ++i) {
    for (uint32_t c = 0; c < arity; ++c) {
      RECUR_RETURN_IF_ERROR(in->GetI64(&row[c]));
    }
    // Rows of one serialized relation are distinct by construction (the
    // source was a deduplicated set); a duplicate means corruption.
    if (!rel.InsertUnchecked(
            TupleRef(row.data(), static_cast<int>(arity)))) {
      return Status::DataLoss("serialized relation rejected a row");
    }
  }
  return rel;
}

void SerializeSymbols(const SymbolTable& symbols, util::io::ByteWriter* out) {
  const uint32_t count = static_cast<uint32_t>(symbols.size());
  out->PutU32(count);
  for (uint32_t id = 1; id <= count; ++id) {
    out->PutString(symbols.NameOf(id));
  }
}

Status DeserializeSymbols(util::io::ByteReader* in, SymbolTable* symbols) {
  uint32_t count = 0;
  RECUR_RETURN_IF_ERROR(in->GetU32(&count));
  std::string name;
  for (uint32_t id = 1; id <= count; ++id) {
    RECUR_RETURN_IF_ERROR(in->GetString(&name));
    const SymbolId got = symbols->Intern(name);
    if (got != id) {
      return Status::Unsupported(
          "symbol table drift: \"" + name + "\" saved as id " +
          std::to_string(id) + " but interned as " + std::to_string(got) +
          " — persisted SymbolIds would be misread");
    }
  }
  return Status::OK();
}

Status SerializeDatabase(const Database& db, const SymbolTable& symbols,
                         util::io::ByteWriter* out) {
  std::vector<std::pair<std::string, const Relation*>> entries;
  entries.reserve(db.relations().size());
  for (const auto& [pred, rel] : db.relations()) {
    const std::string& name = symbols.NameOf(pred);
    if (name == "<invalid>") {
      return Status::Internal("relation predicate id " +
                              std::to_string(pred) +
                              " is not in the symbol table");
    }
    entries.emplace_back(name, rel.get());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out->PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [name, rel] : entries) {
    out->PutString(name);
    SerializeRelation(*rel, out);
  }
  return Status::OK();
}

Result<Database> DeserializeDatabase(util::io::ByteReader* in,
                                     SymbolTable* symbols) {
  uint32_t count = 0;
  RECUR_RETURN_IF_ERROR(in->GetU32(&count));
  Database db;
  std::string name;
  for (uint32_t i = 0; i < count; ++i) {
    RECUR_RETURN_IF_ERROR(in->GetString(&name));
    if (name.empty()) {
      return Status::DataLoss("serialized database names an empty predicate");
    }
    RECUR_ASSIGN_OR_RETURN(Relation rel, DeserializeRelation(in));
    const SymbolId pred = symbols->Intern(name);
    RECUR_ASSIGN_OR_RETURN(Relation * slot,
                           db.GetOrCreate(pred, rel.arity()));
    *slot = std::move(rel);
  }
  return db;
}

}  // namespace recur::ra
