#ifndef RECUR_RA_RELATION_H_
#define RECUR_RA_RELATION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::ra {

/// A database value. Symbolic constants are interned SymbolIds widened to
/// 64 bits; synthetic workloads use plain integers. The engine never
/// interprets values beyond equality.
using Value = int64_t;

/// A row: fixed-arity vector of values.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    // FNV-1a over the 64-bit values.
    uint64_t h = 1469598103934665603ull;
    for (Value v : t) {
      h ^= static_cast<uint64_t>(v);
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

/// A set of values (used for frontier sets in compiled evaluation).
using ValueSet = std::unordered_set<Value>;

/// An in-memory relation: a deduplicated bag of fixed-arity tuples with
/// lazily built per-column hash indexes.
///
/// Index maintenance is incremental: once a column index has been built,
/// inserts append the new row to it instead of invalidating it, so fixpoint
/// loops that grow a relation round by round do not re-hash the whole
/// relation on every probe. Copies drop the indexes.
///
/// Thread-safety contract: any number of threads may call const members
/// (Contains / RowsWithValue / rows / ...) concurrently — lazy index
/// construction is internally synchronized. Mutations (Insert / Clear /
/// assignment) require exclusive access, as with standard containers.
/// References returned by RowsWithValue are invalidated by mutation.
class Relation {
 public:
  Relation() : arity_(0) {}
  explicit Relation(int arity) : arity_(arity) { indexes_.resize(arity_); }

  Relation(const Relation& other)
      : arity_(other.arity_), rows_(other.rows_), row_set_(other.row_set_) {
    indexes_.resize(arity_);
  }
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  int arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Pre-sizes the row store and dedup set for about `n` rows, cutting
  /// rehash churn in insert-heavy loops. A hint only; never shrinks.
  void Reserve(size_t n);

  /// Inserts a tuple; returns true if it was new. Tuples of wrong arity are
  /// rejected with false (and never stored).
  bool Insert(const Tuple& t);
  bool Insert(Tuple&& t);

  /// Inserts every tuple of `other` (arities must match; mismatched rows
  /// are skipped). Returns the number of new tuples.
  size_t InsertAll(const Relation& other);

  bool Contains(const Tuple& t) const { return row_set_.count(t) > 0; }

  /// Row indexes whose `column` equals `v` (hash index, built lazily).
  const std::vector<int>& RowsWithValue(int column, Value v) const;

  /// The set of distinct values appearing in `column`.
  ValueSet ColumnValues(int column) const;

  /// Removes all rows (keeps arity).
  void Clear();

  /// Number of from-scratch column index builds this relation has done.
  /// With incremental maintenance this counts one build per column probed,
  /// not one per insert — evaluators surface it in EvalStats.
  size_t index_rebuilds() const {
    return index_rebuilds_.load(std::memory_order_relaxed);
  }

  /// Sorted, printable form for tests and tools: "{(1,2), (3,4)}".
  std::string ToString() const;

 private:
  struct ColumnIndex {
    std::unordered_map<Value, std::vector<int>> map;
    // Guarded by double-checked locking in EnsureIndex: readers that
    // observe built==true (acquire) see a fully constructed map.
    std::atomic<bool> built{false};

    ColumnIndex() = default;
    ColumnIndex(ColumnIndex&& other) noexcept : map(std::move(other.map)) {
      built.store(other.built.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    }
    ColumnIndex& operator=(ColumnIndex&& other) noexcept {
      map = std::move(other.map);
      built.store(other.built.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      return *this;
    }
  };

  void EnsureIndex(int column) const;
  /// Appends row `row` (already in rows_) to every built column index.
  void AppendToIndexes(int row);

  int arity_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> row_set_;
  // Sized to arity_ at construction so concurrent lazy builds never resize
  // the vector itself; mutable because building an index does not change
  // the logical relation.
  mutable std::vector<ColumnIndex> indexes_;
  mutable std::mutex index_mutex_;  // serializes lazy index construction
  mutable std::atomic<size_t> index_rebuilds_{0};
};

}  // namespace recur::ra

#endif  // RECUR_RA_RELATION_H_
