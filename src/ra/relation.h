#ifndef RECUR_RA_RELATION_H_
#define RECUR_RA_RELATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::ra {

/// A database value. Symbolic constants are interned SymbolIds widened to
/// 64 bits; synthetic workloads use plain integers. The engine never
/// interprets values beyond equality.
using Value = int64_t;

/// A row: fixed-arity vector of values.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    // FNV-1a over the 64-bit values.
    uint64_t h = 1469598103934665603ull;
    for (Value v : t) {
      h ^= static_cast<uint64_t>(v);
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

/// A set of values (used for frontier sets in compiled evaluation).
using ValueSet = std::unordered_set<Value>;

/// An in-memory relation: a deduplicated bag of fixed-arity tuples with
/// lazily built per-column hash indexes. Insertion invalidates indexes;
/// reads rebuild them on demand. Copyable (copies drop the indexes).
class Relation {
 public:
  Relation() : arity_(0) {}
  explicit Relation(int arity) : arity_(arity) {}

  Relation(const Relation& other)
      : arity_(other.arity_), rows_(other.rows_), row_set_(other.row_set_) {}
  Relation& operator=(const Relation& other) {
    arity_ = other.arity_;
    rows_ = other.rows_;
    row_set_ = other.row_set_;
    indexes_.clear();
    return *this;
  }
  Relation(Relation&&) noexcept = default;
  Relation& operator=(Relation&&) noexcept = default;

  int arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Inserts a tuple; returns true if it was new. Tuples of wrong arity are
  /// rejected with false (and never stored).
  bool Insert(const Tuple& t);
  bool Insert(Tuple&& t);

  /// Inserts every tuple of `other` (arities must match; mismatched rows
  /// are skipped). Returns the number of new tuples.
  size_t InsertAll(const Relation& other);

  bool Contains(const Tuple& t) const { return row_set_.count(t) > 0; }

  /// Row indexes whose `column` equals `v` (hash index, built lazily).
  const std::vector<int>& RowsWithValue(int column, Value v) const;

  /// The set of distinct values appearing in `column`.
  ValueSet ColumnValues(int column) const;

  /// Removes all rows (keeps arity).
  void Clear();

  /// Sorted, printable form for tests and tools: "{(1,2), (3,4)}".
  std::string ToString() const;

 private:
  struct ColumnIndex {
    std::unordered_map<Value, std::vector<int>> map;
    bool built = false;
  };

  void EnsureIndex(int column) const;

  int arity_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> row_set_;
  // Lazily built; mutable because building an index does not change the
  // logical relation.
  mutable std::vector<ColumnIndex> indexes_;
};

}  // namespace recur::ra

#endif  // RECUR_RA_RELATION_H_
