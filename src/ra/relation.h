#ifndef RECUR_RA_RELATION_H_
#define RECUR_RA_RELATION_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <initializer_list>
#include <iterator>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::ra {

/// A database value. Symbolic constants are interned SymbolIds widened to
/// 64 bits; synthetic workloads use plain integers. The engine never
/// interprets values beyond equality.
using Value = int64_t;

/// An owned row: fixed-arity vector of values. The materialized
/// compatibility type — hot paths pass TupleRef views instead.
using Tuple = std::vector<Value>;

/// FNV-1a over the bytes of each 64-bit value. Mixing byte-wise matters:
/// XOR-ing whole words into the state folds sequential ints (the dominant
/// workload shape) into clustered buckets. TupleRef, Tuple, and the
/// relation's dedup set all hash through this one routine.
inline constexpr uint64_t kHashSeed = 1469598103934665603ull;

inline uint64_t HashValueMix(uint64_t h, Value value) {
  uint64_t v = static_cast<uint64_t>(value);
  for (int b = 0; b < 64; b += 8) {
    h ^= (v >> b) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

inline uint64_t HashValueSpan(const Value* data, size_t n) {
  uint64_t h = kHashSeed;
  for (size_t i = 0; i < n; ++i) h = HashValueMix(h, data[i]);
  return h;
}

/// A non-owning view of one row: pointer + arity. Cheap to copy, hashable,
/// and ordered; converts to/from Tuple so legacy call sites keep working.
/// A TupleRef into a Relation is invalidated by any mutation of that
/// relation (inserts may reallocate the arena).
class TupleRef {
 public:
  constexpr TupleRef() = default;
  constexpr TupleRef(const Value* data, int arity)
      : data_(data), arity_(arity) {}
  // NOLINTNEXTLINE(google-explicit-constructor): view of an owned tuple.
  TupleRef(const Tuple& t)
      : data_(t.data()), arity_(static_cast<int>(t.size())) {}

  int arity() const { return arity_; }
  size_t size() const { return static_cast<size_t>(arity_); }
  bool empty() const { return arity_ == 0; }
  const Value* data() const { return data_; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + arity_; }
  Value operator[](int i) const { return data_[i]; }

  Tuple ToTuple() const { return Tuple(data_, data_ + arity_); }
  // NOLINTNEXTLINE(google-explicit-constructor): legacy materialization.
  operator Tuple() const { return ToTuple(); }

  friend bool operator==(TupleRef a, TupleRef b) {
    return a.arity_ == b.arity_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(TupleRef a, TupleRef b) { return !(a == b); }
  friend bool operator<(TupleRef a, TupleRef b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  const Value* data_ = nullptr;
  int arity_ = 0;
};

/// Transparent hasher: accepts TupleRef directly and Tuple through the
/// implicit view conversion, so one functor serves both paths.
struct TupleHash {
  using is_transparent = void;
  size_t operator()(TupleRef t) const {
    return static_cast<size_t>(HashValueSpan(t.data(), t.size()));
  }
};

/// A strided view over a relation's row arena. Iteration and indexing
/// yield TupleRef values.
///
/// Invalidation contract: the view (and every TupleRef obtained from it)
/// is invalidated by any mutation of the owning Relation — Insert may
/// reallocate the arena. Re-acquire via rows() after mutating; never
/// insert into a relation while iterating its own rows() view.
class RowsView {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = TupleRef;
    using difference_type = std::ptrdiff_t;
    using pointer = const TupleRef*;
    using reference = TupleRef;

    iterator() = default;
    iterator(const Value* data, int arity, size_t index)
        : data_(data), arity_(arity), index_(index) {}
    TupleRef operator*() const {
      return TupleRef(data_ + index_ * arity_, arity_);
    }
    iterator& operator++() {
      ++index_;
      return *this;
    }
    iterator operator++(int) {
      iterator out = *this;
      ++index_;
      return out;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.index_ == b.index_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.index_ != b.index_;
    }

   private:
    const Value* data_ = nullptr;
    int arity_ = 0;
    size_t index_ = 0;
  };

  RowsView() = default;
  RowsView(const Value* data, int arity, size_t count)
      : data_(data), arity_(arity), count_(count) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  TupleRef operator[](size_t i) const {
    return TupleRef(data_ + i * arity_, arity_);
  }
  iterator begin() const { return iterator(data_, arity_, 0); }
  iterator end() const { return iterator(data_, arity_, count_); }

 private:
  const Value* data_ = nullptr;
  int arity_ = 0;
  size_t count_ = 0;
};

/// A set of values (used for frontier sets in compiled evaluation).
using ValueSet = std::unordered_set<Value>;

/// An in-memory relation: a deduplicated bag of fixed-arity tuples with
/// lazily built per-column hash indexes.
///
/// Storage layout: all rows live in one arity-strided Value arena (row i
/// occupies arena[i*arity, (i+1)*arity)), so a fixpoint loop appends
/// values contiguously instead of heap-allocating a vector per tuple.
/// Deduplication is an open-addressed table of row ids probed through the
/// arena — inserts allocate nothing beyond amortized arena/table growth.
///
/// Index maintenance is incremental: once a column index has been built,
/// inserts append the new row id to it instead of invalidating it, so
/// fixpoint loops that grow a relation round by round do not re-hash the
/// whole relation on every probe. Copies drop the indexes.
///
/// Thread-safety contract (carried over from the row-of-vectors layout):
/// any number of threads may call const members (Contains / RowsWithValue
/// / rows / ...) concurrently — lazy index construction is internally
/// synchronized. Mutations (Insert / Clear / assignment) require exclusive
/// access, as with standard containers. Views and references returned by
/// rows() and RowsWithValue are invalidated by mutation.
class Relation {
 public:
  Relation() : arity_(0) {}
  explicit Relation(int arity) : arity_(arity) { indexes_.resize(arity_); }

  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  int arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Strided view of all rows; see RowsView for the invalidation contract.
  RowsView rows() const {
    return RowsView(arena_.data(), arity_, num_rows_);
  }

  /// Pre-sizes the arena and dedup table for about `n` rows, cutting
  /// reallocation churn in insert-heavy loops. A hint only; never shrinks.
  void Reserve(size_t n);

  /// Inserts a row; returns true if it was new. Rows of wrong arity are
  /// rejected with false (and never stored). Safe to pass a TupleRef into
  /// this relation's own arena.
  bool Insert(TupleRef t);
  bool Insert(const Tuple& t) { return Insert(TupleRef(t)); }
  bool Insert(std::initializer_list<Value> values) {
    return Insert(TupleRef(values.begin(), static_cast<int>(values.size())));
  }

  /// Bulk-append without the duplicate probe: the caller guarantees `t` is
  /// not already present (generator loads of constructively distinct rows,
  /// merges of pre-deduplicated sets). The row still enters the dedup
  /// table so later Insert/Contains stay correct. Wrong arity → false.
  bool InsertUnchecked(TupleRef t);
  bool InsertUnchecked(std::initializer_list<Value> values) {
    return InsertUnchecked(
        TupleRef(values.begin(), static_cast<int>(values.size())));
  }

  /// Zero-copy emit path: write exactly arity() values into the returned
  /// staging slot, then call CommitStagedRow() to dedup-and-keep (true) or
  /// discard (false). The slot is only valid until the next mutation; an
  /// abandoned staged row is harmlessly reused by the next StageRow().
  Value* StageRow();
  bool CommitStagedRow();

  /// Batched checked insert of `n` lane-major rows (`n * arity()` values,
  /// row i at rows + i*arity()): hashes every row up front, grows the
  /// dedup table once for the whole batch, and software-prefetches each
  /// row's home slot a few lanes ahead of its probe so the table's cache
  /// misses overlap instead of serializing. Semantically identical to n
  /// checked Insert() calls in order; returns the number of new rows.
  /// `rows` must not alias this relation's arena.
  size_t InsertBatch(const Value* rows, size_t n);

  /// Inserts every tuple of `other` (arities must match; mismatched
  /// relations are skipped). Returns the number of new tuples.
  size_t InsertAll(const Relation& other);

  /// Erases one row; returns true if it was present. Surviving rows keep
  /// their relative order. Every built index (single-column and composite)
  /// is dropped — row ids shift on compaction — so the next keyed probe
  /// rebuilds from the survivors and can never serve a stale row.
  bool Erase(TupleRef t);
  bool Erase(const Tuple& t) { return Erase(TupleRef(t)); }
  bool Erase(std::initializer_list<Value> values) {
    return Erase(TupleRef(values.begin(), static_cast<int>(values.size())));
  }

  /// Bulk form of Erase: removes every row of `victims` that is present
  /// here (arity mismatch removes nothing). Returns the number of rows
  /// removed; one compaction + index invalidation regardless of count.
  size_t EraseRows(const Relation& victims);

  bool Contains(TupleRef t) const;
  bool Contains(std::initializer_list<Value> values) const {
    return Contains(
        TupleRef(values.begin(), static_cast<int>(values.size())));
  }

  /// Row indexes whose `column` equals `v` (hash index, built lazily).
  const std::vector<int>& RowsWithValue(int column, Value v) const;

  /// Candidate row indexes whose values at `columns` may equal `key` (a
  /// span of columns.size() values, in the same column order). The rows
  /// hash-match the key over all listed columns, so callers still verify
  /// full equality — the list is a superset of the matching rows (hash
  /// collisions, or the single-column fallback when the relation already
  /// carries kMaxMultiIndexes distinct composite indexes). Built lazily
  /// per distinct column set and maintained incrementally on insert, like
  /// the single-column indexes; same thread-safety contract.
  const std::vector<int>& RowsWithKey(const std::vector<int>& columns,
                                      const Value* key) const;

  /// Distinct composite column sets a relation will index before falling
  /// back to the first listed column's single-column index. Bounded so
  /// concurrent readers can scan a fixed slot array without locking.
  static constexpr size_t kMaxMultiIndexes = 8;

  /// Batched FNV hashing of a lane-major key matrix (`lanes` keys of
  /// `width` values each): out[l] = HashValueSpan(keys + l*width, width).
  /// The one hashing kernel the batched executor and the indexes share.
  static void HashKeysBatch(const Value* keys, size_t lanes, size_t width,
                            uint64_t* out);

  /// Batched index probe, the executor's join kernel. `keys` is lane-major
  /// (lanes * columns.size() values); on return out[l] points at the
  /// candidate row list for lane l, or nullptr when the lane has no
  /// candidates. Runs in three passes over the batch: FNV-hash every key,
  /// test the index's Bloom filter (prefetching surviving buckets), then
  /// resolve the buckets. Exactness matches the point APIs: single-column
  /// probes return exact row lists, wider probes return hash-candidate
  /// supersets the caller must verify. Returns the number of lanes the
  /// Bloom filter pruned without touching a bucket. Same thread-safety
  /// contract as RowsWithValue/RowsWithKey.
  size_t ProbeBatch(const std::vector<int>& columns, const Value* keys,
                    size_t lanes, const std::vector<int>** out) const;

  /// Columnar gather over the strided arena: out[i] = value of row
  /// row_ids[i] at `column`. Row ids must be in range.
  void GatherColumn(const int* row_ids, size_t n, int column,
                    Value* out) const;

  /// A sorted (key hash, row id) index over an ordered column set — the
  /// sort-merge join access path. Probes binary-search the sorted run and
  /// scan the small unsorted append tail; AppendToIndexes folds the tail
  /// back in once it outgrows a threshold (mutation is exclusive, so the
  /// merge never races a reader). Candidates are a hash superset, like
  /// RowsWithKey.
  struct SortedIndex {
    std::vector<int> columns;
    std::vector<std::pair<uint64_t, int>> entries;  // sorted by hash
    std::vector<std::pair<uint64_t, int>> tail;     // unsorted appends
  };

  /// Distinct sorted indexes per relation before EnsureSortedIndex starts
  /// returning nullptr (callers fall back to the hash probe path).
  static constexpr size_t kMaxSortedIndexes = 4;

  /// Finds or lazily builds the sorted index for `columns`; nullptr when
  /// the slot array is full or a column is out of range. The pointer stays
  /// valid until the relation is mutated-destructively (erase/compact) or
  /// destroyed; appends keep it usable.
  const SortedIndex* EnsureSortedIndex(const std::vector<int>& columns) const;

  /// Appends every candidate row whose key hash equals `key_hash` to
  /// `out` (superset contract; callers verify equality).
  void SortedCandidates(const SortedIndex& index, uint64_t key_hash,
                        std::vector<int>* out) const;

  /// The set of distinct values appearing in `column`.
  ValueSet ColumnValues(int column) const;

  /// Removes all rows (keeps arity).
  void Clear();

  /// Resident bytes of the value arena plus the dedup table — the
  /// footprint resource-governed evaluators charge against
  /// ResourceLimits::max_arena_bytes. Excludes lazily built column
  /// indexes, whose size tracks the arena within a small factor.
  size_t ArenaBytes() const;

  /// Number of from-scratch column index builds this relation has done.
  /// With incremental maintenance this counts one build per column probed,
  /// not one per insert — evaluators surface it in EvalStats.
  size_t index_rebuilds() const {
    return index_rebuilds_.load(std::memory_order_relaxed);
  }

  /// Sorted, printable form for tests and tools: "{(1,2), (3,4)}".
  std::string ToString() const;

 private:
  /// Open-addressed bucket table shared by every hash-index flavor: a
  /// power-of-two array of {hash, key, rows} buckets (linear probing; an
  /// empty rows vector marks a free slot) plus a Bloom filter over the
  /// key hashes (~10 bits and two probe positions per distinct key).
  /// Single-column indexes store the raw column value in `key` and
  /// compare it exactly — RowsWithValue stays exact; composite indexes
  /// match on the 64-bit FNV key hash alone — RowsWithKey stays a
  /// candidate superset.
  struct KeyBuckets {
    struct Bucket {
      uint64_t hash = 0;
      Value key = 0;
      std::vector<int> rows;
    };
    std::vector<Bucket> buckets;
    std::vector<uint64_t> bloom;  // bit array; word count a power of two
    size_t used = 0;

    /// Bloom membership test: false means the key is definitely absent
    /// (an empty table rejects everything).
    bool MayContain(uint64_t hash) const {
      if (bloom.empty()) return false;
      const size_t bits = bloom.size() * 64;
      const size_t b1 = hash & (bits - 1);
      const size_t b2 = (hash >> 31) & (bits - 1);
      return ((bloom[b1 >> 6] >> (b1 & 63)) & 1) != 0 &&
             ((bloom[b2 >> 6] >> (b2 & 63)) & 1) != 0;
    }
    void BloomAdd(uint64_t hash) {
      const size_t bits = bloom.size() * 64;
      const size_t b1 = hash & (bits - 1);
      const size_t b2 = (hash >> 31) & (bits - 1);
      bloom[b1 >> 6] |= uint64_t{1} << (b1 & 63);
      bloom[b2 >> 6] |= uint64_t{1} << (b2 & 63);
    }
    /// Software-prefetches the home bucket of `hash` so a batched probe
    /// overlaps the memory latency of one lane with the hashing of the
    /// next.
    void Prefetch(uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
      if (!buckets.empty()) {
        __builtin_prefetch(&buckets[hash & (buckets.size() - 1)]);
      }
#endif
    }
    const std::vector<int>* Find(uint64_t hash, Value key, bool exact) const;
    std::vector<int>* FindOrInsert(uint64_t hash, Value key, bool exact);
    void Grow();
  };

  struct ColumnIndex {
    KeyBuckets table;
    // Guarded by double-checked locking in EnsureIndex: readers that
    // observe built==true (acquire) see a fully constructed table.
    std::atomic<bool> built{false};

    ColumnIndex() = default;
    ColumnIndex(ColumnIndex&& other) noexcept
        : table(std::move(other.table)) {
      built.store(other.built.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    }
    ColumnIndex& operator=(ColumnIndex&& other) noexcept {
      table = std::move(other.table);
      built.store(other.built.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      return *this;
    }
  };

  /// A composite index over an ordered set of columns, keyed by the FNV
  /// hash of the projected row (collisions collapse into one bucket, hence
  /// the candidate-superset contract of RowsWithKey). Slots live behind
  /// stable unique_ptrs in a fixed array: a reader that observes
  /// multi_count_ (acquire) sees fully published entries and never races a
  /// registration.
  struct MultiIndex {
    std::vector<int> columns;
    KeyBuckets table;
  };

  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  TupleRef RowAt(size_t row) const {
    return TupleRef(arena_.data() + row * arity_, arity_);
  }
  uint64_t HashRow(size_t row) const {
    return HashValueSpan(arena_.data() + row * arity_, arity_);
  }
  /// Copies `t` into the staging slot, handling aliasing with our arena.
  void CopyIntoStaging(TupleRef t);
  /// Row id of `t` in the arena, or npos if absent.
  size_t FindRow(TupleRef t) const;
  /// Compacts the arena after marking `n_dead` rows dead, rebuilds the
  /// dedup table, and drops every index (row ids shifted).
  void CompactAfterErase(const std::vector<char>& dead, size_t n_dead);
  /// Places the staged row into the dedup table without an equality probe.
  void CommitStagedRowUnchecked();
  /// Rebuilds the dedup table to hold `min_rows` rows under max load.
  void GrowSlots(size_t min_rows);

  void EnsureIndex(int column) const;
  /// Appends row `row` (already in the arena) to every built column index
  /// and every registered composite index.
  void AppendToIndexes(size_t row);
  /// FNV hash of row `row` projected onto `columns`; identical to
  /// HashValueSpan over the gathered key values.
  uint64_t HashRowKey(size_t row, const std::vector<int>& columns) const;
  /// Finds or builds the composite index for `columns`; nullptr once the
  /// slot array is full (callers fall back to a single-column probe).
  const MultiIndex* EnsureMultiIndex(const std::vector<int>& columns) const;

  int arity_;
  size_t num_rows_ = 0;
  /// Row i's values at [i*arity_, (i+1)*arity_); may briefly hold one
  /// staged (uncommitted) row past num_rows_*arity_.
  std::vector<Value> arena_;
  /// Open-addressed (linear probing, power-of-two) dedup table of row ids;
  /// kEmptySlot marks a free slot. Row-id entries are arena-relative, so
  /// copies of the relation copy the table verbatim.
  std::vector<uint32_t> slots_;
  // Sized to arity_ at construction so concurrent lazy builds never resize
  // the vector itself; mutable because building an index does not change
  // the logical relation.
  mutable std::vector<ColumnIndex> indexes_;
  // Composite indexes: fixed slot array + published count so const readers
  // can scan registered entries lock-free while a builder (holding
  // index_mutex_) publishes a new one behind them.
  mutable std::array<std::unique_ptr<MultiIndex>, kMaxMultiIndexes>
      multi_indexes_;
  mutable std::atomic<size_t> multi_count_{0};
  // Sorted (key hash, row) indexes for sort-merge probes; published like
  // the composite slots.
  mutable std::array<std::unique_ptr<SortedIndex>, kMaxSortedIndexes>
      sorted_indexes_;
  mutable std::atomic<size_t> sorted_count_{0};
  mutable std::mutex index_mutex_;  // serializes lazy index construction
  mutable std::atomic<size_t> index_rebuilds_{0};
};

}  // namespace recur::ra

#endif  // RECUR_RA_RELATION_H_
