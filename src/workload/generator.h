#ifndef RECUR_WORKLOAD_GENERATOR_H_
#define RECUR_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <random>

#include "ra/relation.h"

namespace recur::workload {

/// Seeded generators for synthetic EDB relations. All generators are
/// deterministic for a given seed, so benchmarks and tests are repeatable.
/// Values are plain integers; node ids start at `base`.
class Generator {
 public:
  explicit Generator(uint64_t seed) : rng_(seed) {}

  /// A simple chain: (base+0 -> base+1 -> ... -> base+n). n edges. Acyclic.
  ra::Relation Chain(int n, ra::Value base = 0);

  /// A complete `fanout`-ary tree with `depth` levels below the root.
  /// Edges point parent -> child. Acyclic.
  ra::Relation Tree(int depth, int fanout, ra::Value base = 0);

  /// A layered random DAG: `layers` layers of `width` nodes; each node has
  /// `out_degree` random successors in the next layer. Acyclic.
  ra::Relation LayeredDag(int layers, int width, int out_degree,
                          ra::Value base = 0);

  /// A random digraph over n nodes with m uniformly random edges
  /// (self-loops excluded). Usually cyclic.
  ra::Relation RandomGraph(int n, int m, ra::Value base = 0);

  /// A w x h grid with edges right and down. Acyclic.
  ra::Relation Grid(int w, int h, ra::Value base = 0);

  /// A random binary relation pairing values from [abase, abase+an) with
  /// values from [bbase, bbase+bn), m pairs.
  ra::Relation RandomPairs(int an, int bn, int m, ra::Value abase,
                           ra::Value bbase);

  /// A random k-ary relation with `m` rows drawn from [base, base+n).
  ra::Relation RandomRows(int arity, int n, int m, ra::Value base = 0);

 private:
  std::mt19937_64 rng_;
};

}  // namespace recur::workload

#endif  // RECUR_WORKLOAD_GENERATOR_H_
