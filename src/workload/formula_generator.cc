#include "workload/formula_generator.h"

#include <algorithm>

namespace recur::workload {

using datalog::Atom;
using datalog::Rule;
using datalog::Term;

Result<FormulaGenerator::Generated> FormulaGenerator::Next(
    SymbolTable* symbols) {
  // A bounded number of attempts: construction below almost always yields
  // a valid formula on the first try, but the validator has the final
  // word.
  for (int attempt = 0; attempt < 32; ++attempt) {
    int n = RandInt(options_.min_dimension, options_.max_dimension);

    // Head variables H0..H{n-1}.
    std::vector<SymbolId> head_vars;
    for (int i = 0; i < n; ++i) {
      head_vars.push_back(symbols->Intern("V" + std::to_string(i)));
    }

    // Recursive-atom variables: per position, a self-loop, a permutation
    // of another head variable, or a fresh variable — kept distinct.
    std::vector<SymbolId> rec_vars(n, kInvalidSymbol);
    std::vector<bool> head_used(n, false);
    int fresh_count = 0;
    for (int i = 0; i < n; ++i) {
      int choice = RandInt(0, 9);
      if (choice < 3 && !head_used[i]) {
        rec_vars[i] = head_vars[i];  // self directed loop
        head_used[i] = true;
      } else if (choice < 6) {
        int j = RandInt(0, n - 1);
        if (!head_used[j]) {
          rec_vars[i] = head_vars[j];  // permutation edge
          head_used[j] = true;
        }
      }
      if (rec_vars[i] == kInvalidSymbol) {
        rec_vars[i] =
            symbols->Intern("F" + std::to_string(fresh_count++));
      }
    }

    // Variable pool for non-recursive atoms.
    std::vector<SymbolId> pool = head_vars;
    for (SymbolId v : rec_vars) {
      if (std::find(pool.begin(), pool.end(), v) == pool.end()) {
        pool.push_back(v);
      }
    }
    int extra_vars = RandInt(0, options_.max_extra_vars);
    for (int i = 0; i < extra_vars; ++i) {
      pool.push_back(symbols->Intern("W" + std::to_string(i)));
    }

    std::vector<Atom> body;
    int predicates = 0;
    auto add_atom = [&](const std::vector<SymbolId>& vars) {
      std::vector<Term> args;
      for (SymbolId v : vars) args.push_back(Term::Variable(v));
      body.emplace_back(
          symbols->Intern("Q" + std::to_string(predicates++)),
          std::move(args));
    };

    int extra_atoms = RandInt(0, options_.max_extra_atoms);
    for (int a = 0; a < extra_atoms; ++a) {
      int arity = RandInt(1, options_.max_atom_arity);
      std::vector<SymbolId> vars;
      for (int i = 0; i < arity; ++i) {
        vars.push_back(pool[RandInt(0, static_cast<int>(pool.size()) - 1)]);
      }
      add_atom(vars);
    }

    // Range restriction: every head variable must occur in the body.
    auto in_body = [&](SymbolId v) {
      for (const Atom& atom : body) {
        if (atom.ContainsVariable(v)) return true;
      }
      return std::find(rec_vars.begin(), rec_vars.end(), v) !=
             rec_vars.end();
    };
    for (SymbolId h : head_vars) {
      if (!in_body(h)) {
        // Connect it to a random pool variable (or alone, unary).
        if (RandInt(0, 1) == 0) {
          add_atom({h});
        } else {
          add_atom({h, pool[RandInt(0, static_cast<int>(pool.size()) - 1)]});
        }
      }
    }

    // Assemble: head, the non-recursive atoms, and the recursive atom at
    // a random position.
    std::vector<Term> head_args;
    for (SymbolId v : head_vars) head_args.push_back(Term::Variable(v));
    std::vector<Term> rec_args;
    for (SymbolId v : rec_vars) rec_args.push_back(Term::Variable(v));
    SymbolId p = symbols->Intern("P");
    Atom rec_atom(p, rec_args);
    int rec_pos = RandInt(0, static_cast<int>(body.size()));
    body.insert(body.begin() + rec_pos, std::move(rec_atom));

    Rule rule(Atom(p, head_args), std::move(body));
    auto formula = datalog::LinearRecursiveRule::Create(std::move(rule));
    if (!formula.ok()) continue;  // retry (e.g. repeated var slipped in)

    Atom exit_body(symbols->Intern("E"), head_args);
    Rule exit(Atom(p, head_args), {std::move(exit_body)});
    return Generated{*std::move(formula), std::move(exit)};
  }
  return Status::Internal(
      "random formula generation failed to produce a valid formula");
}

}  // namespace recur::workload
