#include "workload/generator.h"

namespace recur::workload {

ra::Relation Generator::Chain(int n, ra::Value base) {
  ra::Relation out(2);
  // Constructively distinct rows: bulk-append without the duplicate probe.
  out.Reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.InsertUnchecked({base + i, base + i + 1});
  }
  return out;
}

ra::Relation Generator::Tree(int depth, int fanout, ra::Value base) {
  ra::Relation out(2);
  // Nodes are numbered breadth-first: node k's children are
  // k*fanout+1 .. k*fanout+fanout (0-based heap layout).
  int64_t level_start = 0;
  int64_t level_size = 1;
  for (int d = 0; d < depth; ++d) {
    for (int64_t i = 0; i < level_size; ++i) {
      int64_t parent = level_start + i;
      for (int c = 1; c <= fanout; ++c) {
        // Heap layout assigns every child a unique id: no dup probe needed.
        out.InsertUnchecked({base + parent,
                             base + parent * fanout + c});
      }
    }
    level_start = level_start * fanout + 1;
    level_size *= fanout;
  }
  return out;
}

ra::Relation Generator::LayeredDag(int layers, int width, int out_degree,
                                   ra::Value base) {
  ra::Relation out(2);
  std::uniform_int_distribution<int> pick(0, width - 1);
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      ra::Value from = base + static_cast<int64_t>(layer) * width + i;
      for (int d = 0; d < out_degree; ++d) {
        ra::Value to =
            base + static_cast<int64_t>(layer + 1) * width + pick(rng_);
        out.Insert({from, to});
      }
    }
  }
  return out;
}

ra::Relation Generator::RandomGraph(int n, int m, ra::Value base) {
  ra::Relation out(2);
  std::uniform_int_distribution<int> pick(0, n - 1);
  int attempts = 0;
  while (static_cast<int>(out.size()) < m && attempts < 20 * m + 100) {
    ++attempts;
    int a = pick(rng_);
    int b = pick(rng_);
    if (a == b) continue;
    out.Insert({base + a, base + b});
  }
  return out;
}

ra::Relation Generator::Grid(int w, int h, ra::Value base) {
  ra::Relation out(2);
  auto id = [&](int x, int y) {
    return base + static_cast<int64_t>(y) * w + x;
  };
  // Right and down edges are distinct by construction.
  out.Reserve(static_cast<size_t>(w) * h * 2);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) out.InsertUnchecked({id(x, y), id(x + 1, y)});
      if (y + 1 < h) out.InsertUnchecked({id(x, y), id(x, y + 1)});
    }
  }
  return out;
}

ra::Relation Generator::RandomPairs(int an, int bn, int m, ra::Value abase,
                                    ra::Value bbase) {
  ra::Relation out(2);
  std::uniform_int_distribution<int> pa(0, an - 1);
  std::uniform_int_distribution<int> pb(0, bn - 1);
  int attempts = 0;
  while (static_cast<int>(out.size()) < m && attempts < 20 * m + 100) {
    ++attempts;
    out.Insert({abase + pa(rng_), bbase + pb(rng_)});
  }
  return out;
}

ra::Relation Generator::RandomRows(int arity, int n, int m, ra::Value base) {
  ra::Relation out(arity);
  std::uniform_int_distribution<int> pick(0, n - 1);
  int attempts = 0;
  while (static_cast<int>(out.size()) < m && attempts < 20 * m + 100) {
    ++attempts;
    ra::Value* dst = out.StageRow();
    for (int i = 0; i < arity; ++i) dst[i] = base + pick(rng_);
    out.CommitStagedRow();
  }
  return out;
}

}  // namespace recur::workload
