#ifndef RECUR_WORKLOAD_FORMULA_GENERATOR_H_
#define RECUR_WORKLOAD_FORMULA_GENERATOR_H_

#include <random>

#include "datalog/linear_rule.h"
#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::workload {

/// Options for random linear-recursive-formula generation.
struct FormulaGeneratorOptions {
  int min_dimension = 1;
  int max_dimension = 4;
  /// Non-recursive atoms added beyond those required for range
  /// restriction.
  int max_extra_atoms = 3;
  /// Extra fresh variables available to the non-recursive atoms (these
  /// produce trivial components and guards).
  int max_extra_vars = 2;
  /// Maximum arity of non-recursive atoms (>= 1).
  int max_atom_arity = 3;
};

/// Generates random formulas in the paper's restricted language (valid
/// LinearRecursiveRule instances) together with a generic exit rule
/// P :- E. Used by the property tests to exercise the classifier and the
/// evaluators far beyond the paper's examples. Deterministic per seed.
class FormulaGenerator {
 public:
  explicit FormulaGenerator(uint64_t seed,
                            FormulaGeneratorOptions options = {})
      : rng_(seed), options_(options) {}

  struct Generated {
    datalog::LinearRecursiveRule formula;
    datalog::Rule exit;
  };

  /// Produces the next random formula. All predicate and variable names
  /// are interned into `symbols` (the recursive predicate is "P", the
  /// exit relation "E", non-recursive predicates "Q0", "Q1", ...).
  Result<Generated> Next(SymbolTable* symbols);

 private:
  int RandInt(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(rng_);
  }

  std::mt19937_64 rng_;
  FormulaGeneratorOptions options_;
};

}  // namespace recur::workload

#endif  // RECUR_WORKLOAD_FORMULA_GENERATOR_H_
