#include "util/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/fault_injection.h"

namespace recur::util::io {

namespace {

constexpr char kContainerMagic[8] = {'R', 'E', 'C', 'U', 'R', 'S', 'N', 'P'};

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// fsync the directory containing `path` so a rename into it is durable.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Status::Internal(Errno("cannot open directory", dir));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal(Errno("cannot fsync directory", dir));
  return Status::OK();
}

Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("cannot write", path));
    }
    data += written;
    n -= static_cast<size_t>(written);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal(Errno("cannot open", path));
  }
  std::string out;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal(Errno("cannot read", path));
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  // Table-driven CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78),
  // built once on first use.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

void ByteWriter::PutU32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  buf_.append(b, 4);
}

void ByteWriter::PutU64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  buf_.append(b, 8);
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void ByteWriter::PutBytes(const void* p, size_t n) {
  buf_.append(static_cast<const char*>(p), n);
}

Status ByteReader::GetBytes(void* p, size_t n) {
  if (remaining() < n) {
    return Status::DataLoss("truncated payload: wanted " + std::to_string(n) +
                            " bytes, " + std::to_string(remaining()) +
                            " remain");
  }
  std::memcpy(p, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::GetU32(uint32_t* v) {
  unsigned char b[4];
  RECUR_RETURN_IF_ERROR(GetBytes(b, 4));
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(b[i]) << (8 * i);
  return Status::OK();
}

Status ByteReader::GetU64(uint64_t* v) {
  unsigned char b[8];
  RECUR_RETURN_IF_ERROR(GetBytes(b, 8));
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return Status::OK();
}

Status ByteReader::GetI64(int64_t* v) {
  uint64_t u = 0;
  RECUR_RETURN_IF_ERROR(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status ByteReader::GetString(std::string* s) {
  uint32_t len = 0;
  RECUR_RETURN_IF_ERROR(GetU32(&len));
  if (remaining() < len) {
    return Status::DataLoss("truncated string of declared length " +
                            std::to_string(len));
  }
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status WriteContainerFile(const std::string& path, std::string_view payload,
                          bool sync) {
  RECUR_FAULT_POINT("io.snapshot.write");

  const size_t n_pages =
      (payload.size() + kContainerPageBytes - 1) / kContainerPageBytes;
  ByteWriter header;
  header.PutBytes(kContainerMagic, sizeof(kContainerMagic));
  header.PutU32(kContainerVersion);
  header.PutU32(static_cast<uint32_t>(kContainerPageBytes));
  header.PutU64(payload.size());
  // The header checksum covers everything before it plus the page table,
  // so a corrupted length or page crc is caught before the body is read.
  ByteWriter pages;
  for (size_t p = 0; p < n_pages; ++p) {
    const size_t off = p * kContainerPageBytes;
    const size_t len = std::min(kContainerPageBytes, payload.size() - off);
    pages.PutU32(Crc32c(payload.data() + off, len));
  }
  const uint32_t header_crc =
      Crc32c(pages.data().data(), pages.data().size(),
             Crc32c(header.data().data(), header.data().size()));
  header.PutU32(header_crc);
  header.PutBytes(pages.data().data(), pages.data().size());

  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Status::Internal(Errno("cannot create", tmp));
  Status status = WriteAll(fd, header.data().data(), header.data().size(), tmp);
  if (status.ok()) status = WriteAll(fd, payload.data(), payload.size(), tmp);
  if (status.ok() && sync && ::fsync(fd) != 0) {
    status = Status::Internal(Errno("cannot fsync", tmp));
  }
  ::close(fd);
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::Internal(Errno("cannot rename into place", path));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (sync) return SyncParentDir(path);
  return Status::OK();
}

Result<std::string> ReadContainerFile(const std::string& path) {
  RECUR_RETURN_IF_ERROR(
      util::FaultInjector::Instance().Check("io.snapshot.read"));
  RECUR_ASSIGN_OR_RETURN(std::string raw, ReadWholeFile(path));

  ByteReader reader(raw);
  char magic[8];
  if (!reader.GetBytes(magic, sizeof(magic)).ok() ||
      std::memcmp(magic, kContainerMagic, sizeof(magic)) != 0) {
    return Status::Unsupported("not a recur container file: " + path);
  }
  uint32_t version = 0, page_size = 0;
  uint64_t payload_len = 0;
  if (!reader.GetU32(&version).ok()) {
    return Status::Unsupported("container header truncated: " + path);
  }
  if (version != kContainerVersion) {
    return Status::Unsupported("container version " + std::to_string(version) +
                               " is not supported (expected " +
                               std::to_string(kContainerVersion) + "): " +
                               path);
  }
  RECUR_RETURN_IF_ERROR(reader.GetU32(&page_size));
  RECUR_RETURN_IF_ERROR(reader.GetU64(&payload_len));
  if (page_size == 0) {
    return Status::DataLoss("container declares zero page size: " + path);
  }
  // Subtraction-style bounds: a corrupt payload_len near 2^64 would wrap
  // both the rounded-up page count and `n_pages * 4 + payload_len`, letting
  // a huge declared length slip past an additive check and walk the CRC
  // loop off the end of the buffer.
  const uint64_t n_pages =
      payload_len / page_size + (payload_len % page_size != 0 ? 1 : 0);
  uint32_t stored_header_crc = 0;
  RECUR_RETURN_IF_ERROR(reader.GetU32(&stored_header_crc));
  if (payload_len > reader.remaining() ||
      n_pages > (reader.remaining() - payload_len) / 4) {
    return Status::DataLoss("container truncated: " + path);
  }
  // Re-derive the header checksum over the fixed fields + page table.
  const char* base = raw.data();
  const size_t fixed_len = 8 + 4 + 4 + 8;           // magic..payload_len
  const size_t table_off = fixed_len + 4;           // past header_crc
  const uint32_t header_crc =
      Crc32c(base + table_off, n_pages * 4, Crc32c(base, fixed_len));
  if (header_crc != stored_header_crc) {
    return Status::DataLoss("container header checksum mismatch: " + path);
  }
  std::vector<uint32_t> page_crcs(n_pages);
  for (uint64_t p = 0; p < n_pages; ++p) {
    RECUR_RETURN_IF_ERROR(reader.GetU32(&page_crcs[p]));
  }
  const size_t body_off = table_off + n_pages * 4;
  for (uint64_t p = 0; p < n_pages; ++p) {
    const uint64_t off = p * page_size;
    const size_t len =
        static_cast<size_t>(std::min<uint64_t>(page_size, payload_len - off));
    if (Crc32c(base + body_off + off, len) != page_crcs[p]) {
      return Status::DataLoss("container page " + std::to_string(p) +
                              " checksum mismatch: " + path);
    }
  }
  return raw.substr(body_off, payload_len);
}

Result<AppendLog> AppendLog::Open(const std::string& path,
                                  int64_t truncate_at) {
  if (truncate_at >= 0 && ::truncate(path.c_str(), truncate_at) != 0 &&
      errno != ENOENT) {
    return Status::Internal(Errno("cannot truncate", path));
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return Status::Internal(Errno("cannot open log", path));
  return AppendLog(fd, path);
}

AppendLog::AppendLog(AppendLog&& other) noexcept
    : fd_(other.fd_), sealed_(other.sealed_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.sealed_ = false;
}

AppendLog& AppendLog::operator=(AppendLog&& other) noexcept {
  if (this == &other) return *this;
  if (fd_ >= 0) ::close(fd_);
  fd_ = other.fd_;
  sealed_ = other.sealed_;
  path_ = std::move(other.path_);
  other.fd_ = -1;
  other.sealed_ = false;
  return *this;
}

AppendLog::~AppendLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendLog::Append(std::string_view payload, bool sync) {
  RECUR_FAULT_POINT("io.wal.append");
  if (fd_ < 0) return Status::Internal("append log is closed");
  if (sealed_) {
    return Status::Internal("append log " + path_ +
                            " is sealed after a failed append");
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::Internal(Errno("cannot stat log", path_));
  }
  ByteWriter record;
  record.PutU32(static_cast<uint32_t>(payload.size()));
  record.PutU32(Crc32c(payload.data(), payload.size()));
  record.PutBytes(payload.data(), payload.size());
  Status status =
      WriteAll(fd_, record.data().data(), record.data().size(), path_);
  if (status.ok() && sync && ::fsync(fd_) != 0) {
    status = Status::Internal(Errno("cannot fsync log", path_));
    // After a failed fsync the kernel may already have dropped this
    // write's dirty pages, and a later fsync can falsely report success —
    // the tail is unknowable, so stop taking appends.
    sealed_ = true;
  }
  if (!status.ok()) {
    // Roll the torn frame back to the pre-append size so a later
    // successful Append never lands behind a bad-CRC record (ScanLog
    // would discard it and every acknowledged record after it). If the
    // rollback itself fails the torn bytes are stuck: seal the log.
    if (::ftruncate(fd_, st.st_size) != 0) sealed_ = true;
    return status;
  }
  return Status::OK();
}

Status AppendLog::Truncate(bool sync) {
  if (fd_ < 0) return Status::Internal("append log is closed");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal(Errno("cannot truncate log", path_));
  }
  if (sync && ::fsync(fd_) != 0) {
    return Status::Internal(Errno("cannot fsync log", path_));
  }
  // The doubtful tail (and everything else) is gone; the snapshot that
  // triggered this rotation supersedes it, so appends may resume.
  sealed_ = false;
  return Status::OK();
}

Result<LogScan> ScanLog(const std::string& path) {
  RECUR_RETURN_IF_ERROR(util::FaultInjector::Instance().Check("io.wal.replay"));
  LogScan scan;
  Result<std::string> raw = ReadWholeFile(path);
  if (!raw.ok()) {
    if (raw.status().IsNotFound()) return scan;  // no log yet: empty scan
    return raw.status();
  }
  const std::string& bytes = *raw;
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      scan.torn_tail = true;  // partial frame header
      break;
    }
    ByteReader frame(std::string_view(bytes).substr(pos, 8));
    uint32_t len = 0, crc = 0;
    (void)frame.GetU32(&len);
    (void)frame.GetU32(&crc);
    if (bytes.size() - pos - 8 < len) {
      scan.torn_tail = true;  // record body cut short
      break;
    }
    const char* body = bytes.data() + pos + 8;
    if (Crc32c(body, len) != crc) {
      scan.torn_tail = true;  // torn or bit-flipped record
      break;
    }
    scan.records.emplace_back(body, len);
    pos += 8 + len;
    scan.record_ends.push_back(pos);
    scan.valid_bytes = pos;
  }
  return scan;
}

}  // namespace recur::util::io
