#ifndef RECUR_UTIL_IO_H_
#define RECUR_UTIL_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace recur::util::io {

/// CRC32C (Castagnoli polynomial, software table-driven) over `n` bytes.
/// Chainable: pass a previous return value as `seed` to extend a checksum
/// across buffers. The durability layer uses it for snapshot page
/// checksums and write-ahead-log record checksums.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// Little-endian append-only encoder for the flat snapshot / WAL formats.
/// Fixed-width integers only — the payloads are arena images, so varint
/// compression would buy little and cost decode branches.
class ByteWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s);
  void PutBytes(const void* p, size_t n);

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a byte span. Every read past the end is
/// kDataLoss — inside a checksummed container truncation means the length
/// bookkeeping itself is corrupt, never a benign EOF.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI64(int64_t* v);
  Status GetString(std::string* s);
  Status GetBytes(void* p, size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// On-disk container format version; readers reject any other version with
/// kUnsupported (never a crash, never a guess).
inline constexpr uint32_t kContainerVersion = 1;
/// Page granularity of the container's checksum table.
inline constexpr size_t kContainerPageBytes = 64 * 1024;

/// Writes `payload` to `path` wrapped in a checksummed container:
///
///   [magic 8B "RECURSNP"] [version u32] [page_size u32]
///   [payload_len u64] [header_crc u32] [page crc32c u32 x ceil(len/page)]
///   [payload bytes]
///
/// The write is atomic: the bytes go to a temporary file in the same
/// directory which is renamed over `path` only once fully written (and,
/// with `sync`, fsync'ed — the rename is also followed by a directory
/// fsync so the new name survives a crash). A reader therefore sees either
/// the old file or the complete new one, never a torn mix.
///
/// Fault site "io.snapshot.write" fires at entry.
Status WriteContainerFile(const std::string& path, std::string_view payload,
                          bool sync);

/// Reads and verifies a container written by WriteContainerFile. A missing
/// file is kNotFound; a bad magic or unknown version is kUnsupported; a
/// truncated body, header corruption, or any page checksum mismatch is
/// kDataLoss. Fault site "io.snapshot.read" fires at entry.
Result<std::string> ReadContainerFile(const std::string& path);

/// What one scan of an append log recovered. `valid_bytes` is the offset
/// of the first byte past the last intact record; `record_ends[i]` is the
/// offset of the first byte past `records[i]`. A recovering process that
/// stops replay early (epoch gap, undecodable payload) must cut the log
/// back to the end of the last record it actually replayed — not to
/// `valid_bytes` — so unreplayable records never sit ahead of new appends.
struct LogScan {
  std::vector<std::string> records;
  std::vector<uint64_t> record_ends;
  uint64_t valid_bytes = 0;
  /// True when trailing bytes after the last intact record failed the
  /// length or checksum check (a torn append). The tail is discarded, not
  /// an error: crash-during-append is the expected failure mode.
  bool torn_tail = false;
};

/// Append-only record log with per-record framing:
///
///   [payload_len u32] [payload_crc32c u32] [payload bytes]
///
/// One Append is one record; a crash mid-append leaves a torn tail that
/// ScanLog detects by checksum and cleanly discards. Move-only; the
/// destructor closes the descriptor without syncing.
class AppendLog {
 public:
  /// Opens `path` for appending, creating it if absent. When
  /// `truncate_at` is non-negative the file is first cut to that size —
  /// recovery uses this to drop a torn tail before new appends.
  static Result<AppendLog> Open(const std::string& path,
                                int64_t truncate_at = -1);

  AppendLog(AppendLog&& other) noexcept;
  AppendLog& operator=(AppendLog&& other) noexcept;
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;
  ~AppendLog();

  /// Appends one framed record; with `sync` the file is fsync'ed before
  /// returning, so a completed Append survives power loss. Fault site
  /// "io.wal.append" fires at entry.
  ///
  /// A failed append never leaves torn bytes ahead of later records: on a
  /// partial write (e.g. ENOSPC) the file is cut back to its pre-append
  /// size, and if that rollback fails — or an fsync fails, leaving the
  /// page cache in an unknown state — the log seals itself and every
  /// subsequent Append returns kInternal. Acknowledged records are
  /// therefore never written behind a bad-CRC frame that ScanLog would
  /// discard them with.
  Status Append(std::string_view payload, bool sync);

  /// Restarts the log empty (log rotation after a snapshot). A successful
  /// Truncate also unseals a log sealed by a failed Append: the records
  /// whose durability was in doubt are gone, superseded by the snapshot.
  Status Truncate(bool sync);

  const std::string& path() const { return path_; }

 private:
  AppendLog(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  bool sealed_ = false;
  std::string path_;
};

/// Scans every intact record of the log at `path`. A missing file yields
/// an empty scan (a fresh server simply has no log yet); a torn or
/// corrupt tail sets `torn_tail` and stops the scan — earlier records are
/// still returned. Fault site "io.wal.replay" fires at entry.
Result<LogScan> ScanLog(const std::string& path);

}  // namespace recur::util::io

#endif  // RECUR_UTIL_IO_H_
