#include "util/fault_injection.h"

#include <chrono>
#include <new>
#include <stdexcept>
#include <thread>
#include <utility>

namespace recur::util {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = sites_.insert_or_assign(site, SiteState{std::move(spec), 0});
  (void)it;
  if (inserted) armed_sites_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sites_.erase(site) > 0) {
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

int FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

Status FaultInjector::Check(const char* site) {
  if (armed_sites_.load(std::memory_order_relaxed) == 0) {
    return Status::OK();
  }
  FaultSpec fired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return Status::OK();
    SiteState& state = it->second;
    ++state.hits;
    const bool fire =
        state.hits == state.spec.trigger_on_hit ||
        (state.spec.sticky && state.hits > state.spec.trigger_on_hit);
    if (!fire) return Status::OK();
    fired = state.spec;
  }
  // Act outside the lock: the callback may re-enter the injector, and a
  // delay must not serialize unrelated sites.
  if (fired.on_hit) fired.on_hit();
  if (fired.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
  }
  switch (fired.kind) {
    case FaultSpec::Kind::kStatus:
      return Status(fired.code, fired.message);
    case FaultSpec::Kind::kThrow:
      throw std::runtime_error(fired.message);
    case FaultSpec::Kind::kBadAlloc:
      throw std::bad_alloc();
    case FaultSpec::Kind::kDelay:
      return Status::OK();
  }
  return Status::OK();
}

void FaultInjector::CheckNoStatus(const char* site) {
  (void)Instance().Check(site);
}

const std::vector<std::string>& KnownFaultSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "naive.round",
      "seminaive.serial.round",
      "seminaive.parallel.round",
      "seminaive.parallel.task",
      "compiled.level",
      "special_plans.round",
      "eval.maintain.round",
      "server.query",
      "server.admit",
      "server.commit.group",
      "server.commit.watchdog",
      "query.filter_into",
      "ra.relation.reserve",
      "ra.relation.erase",
      "plan.executor.batch",
      "io.snapshot.write",
      "io.snapshot.read",
      "io.wal.append",
      "io.wal.replay",
  };
  return *sites;
}

}  // namespace recur::util
