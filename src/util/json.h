#ifndef RECUR_UTIL_JSON_H_
#define RECUR_UTIL_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace recur::util {

/// A minimal JSON document model shared by the benchmark artifacts
/// (BENCH_*.json emission and the traffic harness's baseline comparison)
/// and the traffic spec parser. Strict subset of RFC 8259: no comments, no
/// trailing commas, no NaN/Infinity. Object member order is preserved so
/// emitted documents are byte-deterministic.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>& items() { return items_; }
  const std::vector<Member>& members() const { return members_; }
  std::vector<Member>& members() { return members_; }

  /// Object lookup by key; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed convenience accessors over Find(): the fallback is returned
  /// when the key is absent; a present key of the wrong type is an error
  /// the caller usually wants to surface, so these return Result.
  Result<double> NumberOr(std::string_view key, double fallback) const;
  Result<std::string> StringOr(std::string_view key,
                               std::string fallback) const;
  Result<bool> BoolOr(std::string_view key, bool fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parses a complete JSON document (one value, then end of input).
/// Nesting is capped (64 levels) so adversarially nested input fails with
/// a Status instead of exhausting the stack.
Result<JsonValue> ParseJson(std::string_view text);

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes): quote, backslash, and control characters become escape
/// sequences; everything else (including UTF-8 bytes) passes through.
std::string JsonEscape(std::string_view s);

/// Serializes a value back to compact JSON (object member and array order
/// preserved; numbers via shortest round-trip formatting).
std::string DumpJson(const JsonValue& value);

}  // namespace recur::util

#endif  // RECUR_UTIL_JSON_H_
