#ifndef RECUR_UTIL_RESULT_H_
#define RECUR_UTIL_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "util/status.h"

namespace recur {

/// Result<T> holds either a value of type T or an error Status (never both,
/// never neither). This is the return type of every fallible function that
/// produces a value; mirror of arrow::Result / rocksdb-style status+out-param
/// without the out-param.
template <typename T>
class Result {
 public:
  /// Constructs an error result. Aborts if `status` is OK, because an OK
  /// result must carry a value.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }

  /// Constructs a result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the value; aborts if this result holds an error. Use only after
  /// checking ok(), or in tests.
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!status_.ok()) {
      std::cerr << "Attempted to access value of errored Result: "
                << status_.ToString() << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace recur

#endif  // RECUR_UTIL_RESULT_H_
