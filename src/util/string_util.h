#ifndef RECUR_UTIL_STRING_UTIL_H_
#define RECUR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace recur {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` at every occurrence of `sep`; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Repeats `s` `n` times.
std::string Repeat(std::string_view s, int n);

}  // namespace recur

#endif  // RECUR_UTIL_STRING_UTIL_H_
