#ifndef RECUR_UTIL_FAULT_INJECTION_H_
#define RECUR_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace recur::util {

/// What an armed fault site does when it fires.
struct FaultSpec {
  enum class Kind {
    /// Return `Status(code, message)` from the site.
    kStatus,
    /// Throw std::runtime_error(message) — exercises exception-safety
    /// paths (the thread pool's capture-and-cancel contract).
    kThrow,
    /// Throw std::bad_alloc — simulates an allocation failure.
    kBadAlloc,
    /// Sleep `delay_ms`, then proceed normally — simulates slowness to
    /// make deadline breaches deterministic in tests.
    kDelay,
  };

  Kind kind = Kind::kStatus;
  StatusCode code = StatusCode::kInternal;
  std::string message = "injected fault";
  int delay_ms = 0;
  /// Fire on the Nth hit of the site (1 = first). Earlier hits pass.
  int trigger_on_hit = 1;
  /// Keep firing on every hit at or after `trigger_on_hit`; with false the
  /// fault fires exactly once.
  bool sticky = true;
  /// Optional callback invoked when the site fires (outside the injector
  /// lock) — tests use it to Cancel an ExecutionContext at a deterministic
  /// execution point.
  std::function<void()> on_hit;
};

/// Process-wide registry of named fault sites, compiled into the library so
/// tests can deterministically exercise error paths in every engine. The
/// fast path — nothing armed anywhere — is a single relaxed atomic load, so
/// leaving the probes in production code costs nothing measurable.
///
/// Sites instrumented by the engines:
///   naive.round                 top of every naive fixpoint round
///   seminaive.serial.round      top of every serial semi-naive round
///   seminaive.parallel.round    coordinator, top of every parallel round
///   seminaive.parallel.task     inside every (rule, atom, shard) task
///   compiled.level              every compiled-evaluator level evaluation
///   special_plans.round         every special-plan closure round
///   eval.maintain.round         top of every incremental-maintenance round
///                               (deletion, rederivation, and insertion
///                               passes alike)
///   server.query                entry of server::Database::Query
///   server.admit                entry of GroupCommitter::SubmitAsync
///                               (admission check; a kUnavailable status
///                               fault counts as a shed)
///   server.commit.group         probed once per batch when the committer
///                               first assembles it into a commit group —
///                               a status fault marks that batch poison:
///                               every maintenance attempt containing it
///                               fails deterministically, so quarantine
///                               bisection isolates and rejects it
///   server.commit.watchdog      inside every group-commit attempt, right
///                               after the watchdog deadline starts (a
///                               delay fault simulates a stalled pass)
///   query.filter_into           entry of Query::FilterInto
///   ra.relation.reserve         Relation::Reserve (void site: only kThrow,
///                               kBadAlloc and kDelay faults apply)
///   ra.relation.erase           Relation::EraseRows (void site)
///   plan.executor.batch         every physical-plan executor batch
///   io.snapshot.write           entry of io::WriteContainerFile
///   io.snapshot.read            entry of io::ReadContainerFile
///   io.wal.append               entry of io::AppendLog::Append
///   io.wal.replay               entry of io::ScanLog
///
/// KnownFaultSites() returns this list programmatically; a golden test
/// keeps it in lockstep with the table in docs/EVALUATION.md.
///
/// Thread-safety: Arm/Disarm/Reset/Check may be called from any thread.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or re-arms, resetting the hit count of) `site`.
  void Arm(const std::string& site, FaultSpec spec);
  void Disarm(const std::string& site);
  /// Disarms every site.
  void Reset();
  /// Times `site` has been checked since it was (re-)armed; 0 if unarmed.
  int HitCount(const std::string& site) const;

  /// Called by instrumented code. Returns the armed fault's Status (or
  /// throws, for kThrow/kBadAlloc specs); OK when the site is unarmed or
  /// below its trigger hit.
  Status Check(const char* site);

  /// Check for void call sites that cannot propagate a Status: a kStatus
  /// fault is ignored, the throwing and delaying kinds act as usual.
  static void CheckNoStatus(const char* site);

 private:
  FaultInjector() = default;

  struct SiteState {
    FaultSpec spec;
    int hits = 0;
  };

  std::atomic<int> armed_sites_{0};
  mutable std::mutex mutex_;
  std::unordered_map<std::string, SiteState> sites_;
};

/// Every fault site compiled into the library, in the order the class
/// comment documents them. Tests iterate this list to prove each site's
/// error path is typed (no crash, no partial publish), and a golden test
/// diffs it against the site table in docs/EVALUATION.md.
const std::vector<std::string>& KnownFaultSites();

/// RAII arm/disarm for tests: the fault is disarmed when the scope ends.
class ScopedFault {
 public:
  ScopedFault(std::string site, FaultSpec spec) : site_(std::move(site)) {
    FaultInjector::Instance().Arm(site_, std::move(spec));
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace recur::util

/// Fault point for Status/Result-returning functions: propagates the armed
/// fault's Status out of the enclosing function.
#define RECUR_FAULT_POINT(site) \
  RECUR_RETURN_IF_ERROR(::recur::util::FaultInjector::Instance().Check(site))

#endif  // RECUR_UTIL_FAULT_INJECTION_H_
