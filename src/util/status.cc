#include "util/status.h"

namespace recur {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDataLoss:
      return "Data loss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace recur
