#include "util/symbol_table.h"

namespace recur {

namespace {
const std::string kInvalidName = "<invalid>";
}  // namespace

SymbolTable::SymbolTable() {
  names_.push_back(kInvalidName);  // reserve id 0
}

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidSymbol : it->second;
}

const std::string& SymbolTable::NameOf(SymbolId id) const {
  if (id == kInvalidSymbol || id >= names_.size()) return names_[0];
  return names_[id];
}

SymbolId SymbolTable::Fresh(std::string_view base) {
  for (;;) {
    std::string candidate(base);
    candidate += "@";
    candidate += std::to_string(fresh_counter_++);
    if (index_.find(candidate) == index_.end()) {
      return Intern(candidate);
    }
  }
}

}  // namespace recur
