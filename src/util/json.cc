#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace recur::util {
namespace {

constexpr int kMaxDepth = 64;

/// Recursive-descent parser over a string_view with explicit position.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    RECUR_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON value");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        RECUR_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return JsonValue::Bool(true);
        return Fail("bad literal");
      case 'f':
        if (ConsumeWord("false")) return JsonValue::Bool(false);
        return Fail("bad literal");
      case 'n':
        if (ConsumeWord("null")) return JsonValue::Null();
        return Fail("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      RECUR_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      RECUR_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.members().emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Fail("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      RECUR_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.items().push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Fail("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          RECUR_ASSIGN_OR_RETURN(unsigned cp, ParseHex4());
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  Result<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("bad \\u escape");
      }
    }
    return cp;
  }

  // Encodes a BMP code point (surrogate pairs are passed through as two
  // 3-byte sequences — the artifacts never emit them, so exactness beyond
  // the BMP is not worth the code).
  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    // strtod alone is laxer than RFC 8259 (it takes "01", "+1", ".5",
    // "1."), so check the grammar first: -?(0|[1-9][0-9]*)(\.[0-9]+)?
    // ([eE][+-]?[0-9]+)?
    if (!MatchesNumberGrammar(token)) {
      pos_ = start;
      return Fail("bad number");
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      pos_ = start;
      return Fail("bad number");
    }
    return JsonValue::Number(d);
  }

  static bool MatchesNumberGrammar(const std::string& token) {
    size_t i = 0;
    const size_t n = token.size();
    auto digit = [&](size_t k) {
      return k < n && std::isdigit(static_cast<unsigned char>(token[k]));
    };
    if (i < n && token[i] == '-') ++i;
    if (!digit(i)) return false;
    if (token[i] == '0') {
      ++i;  // a leading zero must stand alone
    } else {
      while (digit(i)) ++i;
    }
    if (i < n && token[i] == '.') {
      ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    if (i < n && (token[i] == 'e' || token[i] == 'E')) {
      ++i;
      if (i < n && (token[i] == '+' || token[i] == '-')) ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    return i == n;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void DumpTo(const JsonValue& value, std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += value.bool_value() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber: {
      const double d = value.number_value();
      if (d == static_cast<double>(static_cast<long long>(d)) &&
          std::abs(d) < 1e15) {
        *out += std::to_string(static_cast<long long>(d));
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        *out += buf;
      }
      break;
    }
    case JsonValue::Kind::kString:
      *out += '"';
      *out += JsonEscape(value.string_value());
      *out += '"';
      break;
    case JsonValue::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) *out += ", ";
        first = false;
        DumpTo(item, out);
      }
      *out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) *out += ", ";
        first = false;
        *out += '"';
        *out += JsonEscape(key);
        *out += "\": ";
        DumpTo(member, out);
      }
      *out += '}';
      break;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

Result<double> JsonValue::NumberOr(std::string_view key,
                                   double fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument("json field '" + std::string(key) +
                                   "' is not a number");
  }
  return v->number_value();
}

Result<std::string> JsonValue::StringOr(std::string_view key,
                                        std::string fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) {
    return Status::InvalidArgument("json field '" + std::string(key) +
                                   "' is not a string");
  }
  return v->string_value();
}

Result<bool> JsonValue::BoolOr(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    return Status::InvalidArgument("json field '" + std::string(key) +
                                   "' is not a bool");
  }
  return v->bool_value();
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string DumpJson(const JsonValue& value) {
  std::string out;
  DumpTo(value, &out);
  return out;
}

}  // namespace recur::util
