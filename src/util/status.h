#ifndef RECUR_UTIL_STATUS_H_
#define RECUR_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace recur {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kParseError = 3,
  kUnsupported = 4,
  kOutOfRange = 5,
  kInternal = 6,
  /// Execution was cancelled via ExecutionContext::Cancel before finishing.
  kCancelled = 7,
  /// A wall-clock deadline elapsed before the computation converged.
  kDeadlineExceeded = 8,
  /// A resource ceiling was hit: fixpoint rounds, tuple budget, arena-byte
  /// budget, or a failed allocation.
  kResourceExhausted = 9,
  /// Persisted state failed verification (checksum mismatch, truncated
  /// snapshot, torn write-ahead-log record) and could not be recovered in
  /// full. Recovery paths surface this instead of serving corrupt data.
  kDataLoss = 10,
  /// The service is overloaded and shed the request instead of queueing
  /// it: the admission queue is full, the request's deadline cannot be
  /// met, or the server is shutting down. Unlike kResourceExhausted
  /// (a budget breached mid-execution), no work was started — retrying
  /// immediately is pointless; back off first.
  kUnavailable = 11,
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Status is the library-wide error type (no exceptions cross public API
/// boundaries). A default-constructed Status is OK; error statuses carry a
/// code and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace recur

/// Propagates a non-OK Status out of the enclosing function.
#define RECUR_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::recur::Status _recur_status = (expr);      \
    if (!_recur_status.ok()) return _recur_status; \
  } while (false)

#define RECUR_CONCAT_IMPL(a, b) a##b
#define RECUR_CONCAT(a, b) RECUR_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define RECUR_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  RECUR_ASSIGN_OR_RETURN_IMPL(                                   \
      RECUR_CONCAT(_recur_result_, __LINE__), lhs, rexpr)

#define RECUR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#endif  // RECUR_UTIL_STATUS_H_
