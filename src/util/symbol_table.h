#ifndef RECUR_UTIL_SYMBOL_TABLE_H_
#define RECUR_UTIL_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace recur {

/// Interned identifier. Ids are dense and stable for the lifetime of the
/// owning SymbolTable; id 0 is reserved as "invalid".
using SymbolId = uint32_t;

inline constexpr SymbolId kInvalidSymbol = 0;

/// SymbolTable interns strings (predicate names, variable names, constant
/// literals) into dense SymbolIds so the rest of the library can compare and
/// hash identifiers as integers. Not thread-safe; each Program/Database owns
/// (or shares) one table.
class SymbolTable {
 public:
  SymbolTable();

  SymbolTable(const SymbolTable&) = default;
  SymbolTable& operator=(const SymbolTable&) = default;

  /// Returns the id for `name`, interning it on first use.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name` or kInvalidSymbol if never interned.
  SymbolId Lookup(std::string_view name) const;

  /// Returns the string for `id`; "<invalid>" for kInvalidSymbol or unknown.
  const std::string& NameOf(SymbolId id) const;

  /// Number of interned symbols (excluding the reserved invalid slot).
  size_t size() const { return names_.size() - 1; }

  /// Produces a fresh symbol that does not collide with any interned name,
  /// derived from `base` (e.g. "x" -> "x@3"). Used for variable renaming.
  SymbolId Fresh(std::string_view base);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> index_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace recur

#endif  // RECUR_UTIL_SYMBOL_TABLE_H_
