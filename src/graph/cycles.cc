#include "graph/cycles.h"

#include <algorithm>
#include <set>
#include <string>

namespace recur::graph {

namespace {

/// Finalizes a cycle from its traversal: computes weights, directionality
/// and rotationality.
Cycle MakeCycle(const CondensedGraph& g, std::vector<CycleStep> steps,
                std::vector<int> clusters) {
  Cycle c;
  c.steps = std::move(steps);
  c.clusters = std::move(clusters);
  c.signed_weight = 0;
  bool all_forward = true;
  bool all_backward = true;
  for (const CycleStep& s : c.steps) {
    c.signed_weight += s.direction;
    if (s.direction > 0) all_backward = false;
    if (s.direction < 0) all_forward = false;
  }
  c.weight = c.signed_weight >= 0 ? c.signed_weight : -c.signed_weight;
  c.one_directional = all_forward || all_backward;

  // Rotational iff at some cluster the vertex we arrive at differs from the
  // vertex the next step leaves from (then an undirected path inside the
  // cluster is part of the cycle).
  auto leave_vertex = [&g](const CycleStep& s) {
    const CondensedArc& arc = g.arcs()[s.arc_index];
    return s.direction > 0 ? arc.tail_vertex : arc.head_vertex;
  };
  auto arrive_vertex = [&g](const CycleStep& s) {
    const CondensedArc& arc = g.arcs()[s.arc_index];
    return s.direction > 0 ? arc.head_vertex : arc.tail_vertex;
  };
  c.rotational = false;
  int n = static_cast<int>(c.steps.size());
  for (int i = 0; i < n; ++i) {
    if (arrive_vertex(c.steps[i]) != leave_vertex(c.steps[(i + 1) % n])) {
      c.rotational = true;
      break;
    }
  }
  return c;
}

/// Canonical key of a cycle: the sorted set of arc indexes (a simple cycle
/// is determined by its arc set, up to traversal direction and rotation).
std::string CycleKey(const Cycle& c) {
  std::vector<int> arcs;
  arcs.reserve(c.steps.size());
  for (const CycleStep& s : c.steps) arcs.push_back(s.arc_index);
  std::sort(arcs.begin(), arcs.end());
  std::string key;
  for (int a : arcs) {
    key += std::to_string(a);
    key += ",";
  }
  return key;
}

class CycleEnumerator {
 public:
  CycleEnumerator(const CondensedGraph& g, int max_cycles)
      : g_(g), max_cycles_(max_cycles) {}

  Result<std::vector<Cycle>> Run() {
    // Self-loop arcs are length-1 cycles.
    for (int a = 0; a < static_cast<int>(g_.arcs().size()); ++a) {
      const CondensedArc& arc = g_.arcs()[a];
      if (arc.from_cluster == arc.to_cluster) {
        Emit(MakeCycle(g_, {CycleStep{a, +1}}, {arc.from_cluster}));
      }
    }
    // Longer cycles: DFS from each start cluster, visiting only clusters
    // with id >= start (so each cycle is found from its minimum cluster).
    for (int start = 0; start < g_.num_clusters(); ++start) {
      start_ = start;
      on_path_.assign(g_.num_clusters(), false);
      arc_used_.assign(g_.arcs().size(), false);
      on_path_[start] = true;
      RECUR_RETURN_IF_ERROR(Dfs(start));
      on_path_[start] = false;
    }
    return std::move(cycles_);
  }

 private:
  Status Dfs(int cluster) {
    for (int a : g_.IncidentArcs(cluster)) {
      const CondensedArc& arc = g_.arcs()[a];
      if (arc_used_[a]) continue;
      if (arc.from_cluster == arc.to_cluster) continue;  // handled above
      int next;
      int direction;
      if (arc.from_cluster == cluster) {
        next = arc.to_cluster;
        direction = +1;
      } else {
        next = arc.from_cluster;
        direction = -1;
      }
      if (next < start_) continue;
      steps_.push_back(CycleStep{a, direction});
      clusters_.push_back(cluster);
      if (next == start_) {
        if (steps_.size() >= 2) {
          Emit(MakeCycle(g_, steps_, clusters_));
          if (static_cast<int>(cycles_.size()) > max_cycles_) {
            return Status::OutOfRange("cycle enumeration exceeded limit");
          }
        }
      } else if (!on_path_[next]) {
        on_path_[next] = true;
        arc_used_[a] = true;
        RECUR_RETURN_IF_ERROR(Dfs(next));
        arc_used_[a] = false;
        on_path_[next] = false;
      }
      steps_.pop_back();
      clusters_.pop_back();
    }
    return Status::OK();
  }

  void Emit(Cycle cycle) {
    std::string key = CycleKey(cycle);
    if (seen_.insert(key).second) {
      cycles_.push_back(std::move(cycle));
    }
  }

  const CondensedGraph& g_;
  int max_cycles_;
  int start_ = 0;
  std::vector<bool> on_path_;
  std::vector<bool> arc_used_;
  std::vector<CycleStep> steps_;
  std::vector<int> clusters_;
  std::set<std::string> seen_;
  std::vector<Cycle> cycles_;
};

}  // namespace

Result<std::vector<Cycle>> EnumerateCycles(const CondensedGraph& g,
                                           int max_cycles) {
  CycleEnumerator enumerator(g, max_cycles);
  return enumerator.Run();
}

}  // namespace recur::graph
