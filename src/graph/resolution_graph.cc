#include "graph/resolution_graph.h"

#include <queue>
#include <unordered_map>

namespace recur::graph {

Result<ResolutionGraph> ResolutionGraph::Build(
    const datalog::LinearRecursiveRule& formula, int k) {
  if (k < 1) {
    return Status::OutOfRange("resolution graph index must be >= 1");
  }
  RECUR_ASSIGN_OR_RETURN(IGraph igraph, IGraph::Build(formula));
  const HybridGraph& base = igraph.graph();

  ResolutionGraph out;
  out.k_ = k;
  // Layer 0: copy of the I-graph.
  for (const Vertex& v : base.vertices()) {
    out.graph_.AddVertex(v);
  }
  for (const Edge& e : base.edges()) {
    out.graph_.AddEdge(e);
  }
  for (int i = 0; i < igraph.dimension(); ++i) {
    out.head_.push_back(igraph.HeadVertex(i));
    out.frontier_.push_back(igraph.BodyVertex(i));
  }

  // Append layers 1..k-1.
  for (int layer = 1; layer < k; ++layer) {
    // Map from the I-graph's vertex index to the resolution graph's vertex
    // index for this layer: consequent variables land on the frontier; all
    // other variables become fresh layer-`layer` vertices.
    std::unordered_map<int, int> vmap;
    for (int i = 0; i < igraph.dimension(); ++i) {
      vmap[igraph.HeadVertex(i)] = out.frontier_[i];
    }
    for (int v = 0; v < base.num_vertices(); ++v) {
      if (vmap.find(v) == vmap.end()) {
        vmap[v] = out.graph_.AddVertex(Vertex{base.vertex(v).var, layer});
      }
    }
    for (const Edge& e : base.edges()) {
      Edge mapped = e;
      mapped.from = vmap[e.from];
      mapped.to = vmap[e.to];
      out.graph_.AddEdge(mapped);
    }
    std::vector<int> new_frontier(igraph.dimension());
    for (int i = 0; i < igraph.dimension(); ++i) {
      new_frontier[i] = vmap[igraph.BodyVertex(i)];
    }
    out.frontier_ = std::move(new_frontier);
  }
  return out;
}

int ResolutionGraph::DirectedPathWeight(int from, int to, bool* found) const {
  // BFS over directed edges traversed forward only (weight accumulates +1
  // per arc). Reverse traversal is not needed for the reported accumulated
  // weights, which follow the arrows.
  std::vector<int> dist(graph_.num_vertices(), -1);
  std::queue<int> queue;
  dist[from] = 0;
  queue.push(from);
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop();
    for (int ei : graph_.IncidentEdges(v)) {
      const Edge& e = graph_.edge(ei);
      if (e.kind != EdgeKind::kDirected || e.from != v) continue;
      if (dist[e.to] == -1) {
        dist[e.to] = dist[v] + 1;
        queue.push(e.to);
      }
    }
  }
  if (dist[to] == -1) {
    if (found != nullptr) *found = false;
    return 0;
  }
  if (found != nullptr) *found = true;
  return dist[to];
}

}  // namespace recur::graph
