#ifndef RECUR_GRAPH_HYBRID_GRAPH_H_
#define RECUR_GRAPH_HYBRID_GRAPH_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::graph {

/// Kind of an I-graph edge.
enum class EdgeKind {
  /// Weight-0 edge between two variables co-occurring in a non-recursive
  /// predicate.
  kUndirected,
  /// Weight +1 edge from a consequent variable of P to the antecedent
  /// variable in the corresponding position (implicit reverse has weight -1).
  kDirected,
};

/// A vertex of the (resolution) graph: a variable at an expansion layer.
/// Layer 0 holds the original I-graph; appending the j-th renumbered I-graph
/// creates layer-j vertices.
struct Vertex {
  SymbolId var = kInvalidSymbol;
  int layer = 0;

  friend bool operator==(const Vertex& a, const Vertex& b) {
    return a.var == b.var && a.layer == b.layer;
  }
};

/// An edge of the labeled weighted hybrid graph G = (V, Eu, Ed, W, L).
struct Edge {
  int from = -1;  // vertex index (tail for directed edges)
  int to = -1;    // vertex index (head for directed edges)
  EdgeKind kind = EdgeKind::kUndirected;
  SymbolId label = kInvalidSymbol;  // predicate label
  /// For directed edges: the argument position (0-based) of the recursive
  /// predicate this edge came from; -1 for undirected edges.
  int position = -1;

  int weight() const { return kind == EdgeKind::kDirected ? 1 : 0; }
};

/// The labeled, weighted, hybrid graph underlying I-graphs and resolution
/// graphs. Parallel edges and self-loops are allowed (self-loop directed
/// edges model variables kept in place by the recursion; parallel arcs arise
/// in resolution graphs).
class HybridGraph {
 public:
  HybridGraph() = default;

  /// Adds a vertex and returns its index.
  int AddVertex(Vertex v);

  /// Adds an edge between existing vertex indexes and returns its index.
  /// Undirected self-loops are silently dropped (they carry no information);
  /// returns -1 in that case.
  int AddEdge(Edge e);

  int num_vertices() const { return static_cast<int>(vertices_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const Vertex& vertex(int i) const { return vertices_[i]; }
  const Edge& edge(int i) const { return edges_[i]; }
  const std::vector<Vertex>& vertices() const { return vertices_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Indexes of edges incident to vertex `v` (self-loops appear once).
  const std::vector<int>& IncidentEdges(int v) const {
    return incident_[v];
  }

  /// Finds the vertex index for (var, layer), or -1.
  int FindVertex(SymbolId var, int layer) const;

  /// Edge indexes of all directed / undirected edges.
  std::vector<int> DirectedEdges() const;
  std::vector<int> UndirectedEdges() const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> incident_;
};

}  // namespace recur::graph

#endif  // RECUR_GRAPH_HYBRID_GRAPH_H_
