#ifndef RECUR_GRAPH_RENDER_H_
#define RECUR_GRAPH_RENDER_H_

#include <string>

#include "graph/hybrid_graph.h"
#include "util/symbol_table.h"

namespace recur::graph {

/// Rendering options for figures.
struct RenderOptions {
  /// Lower-case variable names and append the layer as a subscript digit,
  /// matching the paper's figures (X at layer 1 prints as "x1").
  bool paper_style = true;
};

/// Printable name of a vertex ("x", "z1", ...).
std::string VertexName(const Vertex& v, const SymbolTable& symbols,
                       const RenderOptions& options = {});

/// Text rendering of the graph, one line per edge:
///   x --A-- z          (undirected, label A)
///   x -->P--> z  [1]   (directed, position 1-based, weight +1)
std::string ToAscii(const HybridGraph& g, const SymbolTable& symbols,
                    const RenderOptions& options = {});

/// Graphviz DOT rendering (directed edges as arrows, undirected as plain
/// lines via dir=none).
std::string ToDot(const HybridGraph& g, const SymbolTable& symbols,
                  const std::string& graph_name,
                  const RenderOptions& options = {});

}  // namespace recur::graph

#endif  // RECUR_GRAPH_RENDER_H_
