#ifndef RECUR_GRAPH_RESOLUTION_GRAPH_H_
#define RECUR_GRAPH_RESOLUTION_GRAPH_H_

#include <vector>

#include "graph/igraph.h"

namespace recur::graph {

/// The k-th resolution graph G_k of a formula (§2): G_1 is the I-graph;
/// G_k is obtained from G_{k-1} by appending a renumbered copy of the
/// I-graph, identifying the copy's consequent variables with the variables
/// currently at the recursive positions (the "frontier"). All arrows from
/// earlier layers are retained, which is what gives accumulated weights
/// (e.g. weight 2 from x to z1 in Figure 2(c)).
class ResolutionGraph {
 public:
  /// Builds G_k for `formula` (k >= 1).
  static Result<ResolutionGraph> Build(
      const datalog::LinearRecursiveRule& formula, int k);

  const HybridGraph& graph() const { return graph_; }
  int k() const { return k_; }

  /// Vertex currently at recursive position i after k expansions (the
  /// variables of the innermost occurrence of P).
  int FrontierVertex(int position) const { return frontier_[position]; }
  /// Vertex at consequent position i (unchanged across expansions).
  int HeadVertex(int position) const { return head_[position]; }

  int dimension() const { return static_cast<int>(head_.size()); }

  /// Sum of directed-edge weights along any directed path from `from` to
  /// `to` using directed edges only (forward +1, reverse -1); returns 0 and
  /// sets `found=false` if no such path exists. Used to report accumulated
  /// weights like "weight 2 from x to z1".
  int DirectedPathWeight(int from, int to, bool* found) const;

 private:
  HybridGraph graph_;
  std::vector<int> head_;
  std::vector<int> frontier_;
  int k_ = 1;
};

}  // namespace recur::graph

#endif  // RECUR_GRAPH_RESOLUTION_GRAPH_H_
