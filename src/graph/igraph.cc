#include "graph/igraph.h"

namespace recur::graph {

Result<IGraph> IGraph::Build(const datalog::LinearRecursiveRule& formula) {
  IGraph out;
  const datalog::Rule& rule = formula.rule();

  // One vertex per distinct variable (layer 0).
  for (SymbolId var : rule.Variables()) {
    out.graph_.AddVertex(Vertex{var, 0});
  }

  // Undirected edges: all pairs of distinct variables within each
  // non-recursive atom. (Connectivity is what matters; the classifier works
  // on undirected clusters, so the all-pairs choice for predicates of arity
  // > 2 does not perturb the classification.)
  for (const datalog::Atom& atom : formula.NonRecursiveAtoms()) {
    std::vector<SymbolId> vars = atom.Variables();
    for (size_t i = 0; i < vars.size(); ++i) {
      for (size_t j = i + 1; j < vars.size(); ++j) {
        Edge e;
        e.from = out.graph_.FindVertex(vars[i], 0);
        e.to = out.graph_.FindVertex(vars[j], 0);
        e.kind = EdgeKind::kUndirected;
        e.label = atom.predicate();
        out.graph_.AddEdge(e);
      }
    }
  }

  // Directed edges: consequent position i -> antecedent position i.
  const datalog::Atom& head = formula.head();
  const datalog::Atom& rec = formula.recursive_atom();
  for (int i = 0; i < formula.dimension(); ++i) {
    if (!head.args()[i].IsVariable() || !rec.args()[i].IsVariable()) {
      return Status::Internal(
          "LinearRecursiveRule with constant under the recursive predicate");
    }
    int from = out.graph_.FindVertex(head.args()[i].symbol(), 0);
    int to = out.graph_.FindVertex(rec.args()[i].symbol(), 0);
    Edge e;
    e.from = from;
    e.to = to;
    e.kind = EdgeKind::kDirected;
    e.label = formula.recursive_predicate();
    e.position = i;
    int edge_index = out.graph_.AddEdge(e);
    out.head_vertices_.push_back(from);
    out.body_vertices_.push_back(to);
    out.position_edges_.push_back(edge_index);
  }
  return out;
}

}  // namespace recur::graph
