#ifndef RECUR_GRAPH_CYCLES_H_
#define RECUR_GRAPH_CYCLES_H_

#include <vector>

#include "graph/components.h"
#include "util/result.h"

namespace recur::graph {

/// One traversal step of a cycle: an arc of the condensed graph plus the
/// direction it is traversed in (+1 along the arrow, -1 against it; the
/// implicit reverse edge of the paper).
struct CycleStep {
  int arc_index = -1;
  int direction = +1;
};

/// A non-trivial cycle of the I-graph, expressed on the condensation: a
/// closed cluster-simple walk whose steps are distinct directed arcs.
/// Trivial (all-undirected) cycles never appear here — they live inside
/// clusters and are compressed away, per the paper's remark.
struct Cycle {
  std::vector<CycleStep> steps;
  /// Clusters in traversal order; clusters[i] is where steps[i] starts.
  std::vector<int> clusters;
  /// Sum of step directions for the recorded traversal.
  int signed_weight = 0;
  /// |signed_weight| — the paper's cycle weight (cycles can be traversed
  /// either way; the sign is a traversal artifact).
  int weight = 0;
  /// True if every step has the same direction.
  bool one_directional = false;
  /// True if the cycle passes through at least one undirected edge (§4:
  /// "rotational"); false means the cycle uses directed edges only
  /// ("permutational" when also one-directional).
  bool rotational = false;
};

/// Enumerates all distinct non-trivial simple cycles of the condensation.
/// Two traversals of the same arc set are the same cycle. Fails with
/// OutOfRange if more than `max_cycles` are found (a safety valve; real
/// formulas have a handful).
Result<std::vector<Cycle>> EnumerateCycles(const CondensedGraph& g,
                                           int max_cycles = 100000);

}  // namespace recur::graph

#endif  // RECUR_GRAPH_CYCLES_H_
