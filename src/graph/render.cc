#include "graph/render.h"

#include <cctype>

namespace recur::graph {

std::string VertexName(const Vertex& v, const SymbolTable& symbols,
                       const RenderOptions& options) {
  std::string name = symbols.NameOf(v.var);
  if (options.paper_style) {
    for (char& c : name) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
  }
  if (v.layer > 0) {
    name += std::to_string(v.layer);
  }
  return name;
}

std::string ToAscii(const HybridGraph& g, const SymbolTable& symbols,
                    const RenderOptions& options) {
  std::string out = "vertices:";
  for (int i = 0; i < g.num_vertices(); ++i) {
    out += i == 0 ? " " : ", ";
    out += VertexName(g.vertex(i), symbols, options);
  }
  out += "\n";
  for (int i = 0; i < g.num_edges(); ++i) {
    const Edge& e = g.edge(i);
    std::string from = VertexName(g.vertex(e.from), symbols, options);
    std::string to = VertexName(g.vertex(e.to), symbols, options);
    std::string label = symbols.NameOf(e.label);
    if (e.kind == EdgeKind::kUndirected) {
      out += "  " + from + " --" + label + "-- " + to + "\n";
    } else {
      out += "  " + from + " -->" + label + "--> " + to + "  [" +
             std::to_string(e.position + 1) + "]\n";
    }
  }
  return out;
}

std::string ToDot(const HybridGraph& g, const SymbolTable& symbols,
                  const std::string& graph_name,
                  const RenderOptions& options) {
  std::string out = "digraph \"" + graph_name + "\" {\n";
  for (int i = 0; i < g.num_vertices(); ++i) {
    out += "  v" + std::to_string(i) + " [label=\"" +
           VertexName(g.vertex(i), symbols, options) + "\"];\n";
  }
  for (int i = 0; i < g.num_edges(); ++i) {
    const Edge& e = g.edge(i);
    std::string label = symbols.NameOf(e.label);
    out += "  v" + std::to_string(e.from) + " -> v" + std::to_string(e.to);
    if (e.kind == EdgeKind::kUndirected) {
      out += " [dir=none, label=\"" + label + "\"];\n";
    } else {
      out += " [label=\"" + label + " (+1)\"];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace recur::graph
