#include "graph/components.h"

#include <unordered_map>

namespace recur::graph {

CondensedGraph CondensedGraph::Build(const HybridGraph& g) {
  CondensedGraph out;
  UnionFind uf(g.num_vertices());
  for (const Edge& e : g.edges()) {
    if (e.kind == EdgeKind::kUndirected) uf.Union(e.from, e.to);
  }
  // Dense cluster ids in order of first appearance.
  out.cluster_of_.assign(g.num_vertices(), -1);
  std::unordered_map<int, int> root_to_cluster;
  for (int v = 0; v < g.num_vertices(); ++v) {
    int root = uf.Find(v);
    auto it = root_to_cluster.find(root);
    int cluster;
    if (it == root_to_cluster.end()) {
      cluster = static_cast<int>(out.members_.size());
      root_to_cluster.emplace(root, cluster);
      out.members_.emplace_back();
    } else {
      cluster = it->second;
    }
    out.cluster_of_[v] = cluster;
    out.members_[cluster].push_back(v);
  }
  out.incident_.resize(out.members_.size());
  for (int ei = 0; ei < g.num_edges(); ++ei) {
    const Edge& e = g.edge(ei);
    if (e.kind != EdgeKind::kDirected) continue;
    CondensedArc arc;
    arc.from_cluster = out.cluster_of_[e.from];
    arc.to_cluster = out.cluster_of_[e.to];
    arc.edge_index = ei;
    arc.tail_vertex = e.from;
    arc.head_vertex = e.to;
    int arc_index = static_cast<int>(out.arcs_.size());
    out.arcs_.push_back(arc);
    out.incident_[arc.from_cluster].push_back(arc_index);
    if (arc.to_cluster != arc.from_cluster) {
      out.incident_[arc.to_cluster].push_back(arc_index);
    }
  }
  return out;
}

std::vector<int> CondensedGraph::WeakComponents(int* num_components) const {
  UnionFind uf(num_clusters());
  for (const CondensedArc& arc : arcs_) {
    uf.Union(arc.from_cluster, arc.to_cluster);
  }
  std::vector<int> component(num_clusters(), -1);
  std::unordered_map<int, int> root_to_component;
  int next = 0;
  for (int c = 0; c < num_clusters(); ++c) {
    int root = uf.Find(c);
    auto it = root_to_component.find(root);
    if (it == root_to_component.end()) {
      root_to_component.emplace(root, next);
      component[c] = next++;
    } else {
      component[c] = it->second;
    }
  }
  if (num_components != nullptr) *num_components = next;
  return component;
}

}  // namespace recur::graph
