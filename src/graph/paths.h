#ifndef RECUR_GRAPH_PATHS_H_
#define RECUR_GRAPH_PATHS_H_

#include "graph/components.h"

namespace recur::graph {

/// Maximum weight of any path in the I-graph (on its condensation), where a
/// path traverses each directed arc at most once, forward (+1) or backward
/// (-1); undirected edges contribute 0 and are free to traverse inside
/// clusters. This is the tight rank bound of Ioannidis's theorem for
/// formulas with no cycle of non-zero weight. The empty path gives 0.
int MaxPathWeight(const CondensedGraph& g);

/// Same, restricted to clusters whose component id (per `component`)
/// equals `target_component`.
int MaxPathWeightInComponent(const CondensedGraph& g,
                             const std::vector<int>& component,
                             int target_component);

}  // namespace recur::graph

#endif  // RECUR_GRAPH_PATHS_H_
