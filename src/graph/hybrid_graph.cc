#include "graph/hybrid_graph.h"

namespace recur::graph {

int HybridGraph::AddVertex(Vertex v) {
  vertices_.push_back(v);
  incident_.emplace_back();
  return static_cast<int>(vertices_.size()) - 1;
}

int HybridGraph::AddEdge(Edge e) {
  if (e.kind == EdgeKind::kUndirected && e.from == e.to) {
    return -1;
  }
  int index = static_cast<int>(edges_.size());
  edges_.push_back(e);
  incident_[e.from].push_back(index);
  if (e.to != e.from) incident_[e.to].push_back(index);
  return index;
}

int HybridGraph::FindVertex(SymbolId var, int layer) const {
  for (int i = 0; i < num_vertices(); ++i) {
    if (vertices_[i].var == var && vertices_[i].layer == layer) return i;
  }
  return -1;
}

std::vector<int> HybridGraph::DirectedEdges() const {
  std::vector<int> out;
  for (int i = 0; i < num_edges(); ++i) {
    if (edges_[i].kind == EdgeKind::kDirected) out.push_back(i);
  }
  return out;
}

std::vector<int> HybridGraph::UndirectedEdges() const {
  std::vector<int> out;
  for (int i = 0; i < num_edges(); ++i) {
    if (edges_[i].kind == EdgeKind::kUndirected) out.push_back(i);
  }
  return out;
}

}  // namespace recur::graph
