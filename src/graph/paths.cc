#include "graph/paths.h"

#include <algorithm>

namespace recur::graph {

namespace {

class PathSearcher {
 public:
  PathSearcher(const CondensedGraph& g, const std::vector<int>* component,
               int target)
      : g_(g), component_(component), target_(target) {
    arc_used_.assign(g.arcs().size(), false);
  }

  int Run() {
    for (int c = 0; c < g_.num_clusters(); ++c) {
      if (!InScope(c)) continue;
      Dfs(c, 0);
    }
    return best_;
  }

 private:
  bool InScope(int cluster) const {
    return component_ == nullptr || (*component_)[cluster] == target_;
  }

  void Dfs(int cluster, int weight) {
    best_ = std::max(best_, weight);
    for (int a : g_.IncidentArcs(cluster)) {
      if (arc_used_[a]) continue;
      const CondensedArc& arc = g_.arcs()[a];
      int next;
      int direction;
      if (arc.from_cluster == cluster) {
        next = arc.to_cluster;
        direction = +1;
      } else {
        next = arc.from_cluster;
        direction = -1;
      }
      // Self-loop arcs move weight without moving clusters; their backward
      // traversal (-1) is dominated for a maximum and not explored.
      arc_used_[a] = true;
      Dfs(next, weight + direction);
      arc_used_[a] = false;
    }
  }

  const CondensedGraph& g_;
  const std::vector<int>* component_;
  int target_;
  std::vector<bool> arc_used_;
  int best_ = 0;
};

}  // namespace

int MaxPathWeight(const CondensedGraph& g) {
  PathSearcher searcher(g, nullptr, -1);
  return searcher.Run();
}

int MaxPathWeightInComponent(const CondensedGraph& g,
                             const std::vector<int>& component,
                             int target_component) {
  PathSearcher searcher(g, &component, target_component);
  return searcher.Run();
}

}  // namespace recur::graph
