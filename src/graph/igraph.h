#ifndef RECUR_GRAPH_IGRAPH_H_
#define RECUR_GRAPH_IGRAPH_H_

#include <vector>

#include "datalog/linear_rule.h"
#include "graph/hybrid_graph.h"
#include "util/result.h"

namespace recur::graph {

/// The I-graph of a linear recursive formula (construction after
/// [Ioan 85], §2 of the paper):
///   - one vertex per distinct variable of the rule,
///   - an undirected weight-0 edge labeled Q between every pair of distinct
///     variables co-occurring in a non-recursive predicate Q,
///   - a directed weight-+1 edge labeled P from the consequent variable in
///     position i to the antecedent variable in position i, for every i
///     (a self-loop when they are the same variable).
class IGraph {
 public:
  /// Builds the I-graph of `formula`.
  static Result<IGraph> Build(const datalog::LinearRecursiveRule& formula);

  const HybridGraph& graph() const { return graph_; }

  /// Vertex index of the consequent (head) variable at position i.
  int HeadVertex(int position) const { return head_vertices_[position]; }
  /// Vertex index of the antecedent (recursive-atom) variable at position i.
  int BodyVertex(int position) const { return body_vertices_[position]; }
  /// Edge index of the directed edge for position i.
  int PositionEdge(int position) const { return position_edges_[position]; }

  int dimension() const { return static_cast<int>(head_vertices_.size()); }

 private:
  HybridGraph graph_;
  std::vector<int> head_vertices_;
  std::vector<int> body_vertices_;
  std::vector<int> position_edges_;
};

}  // namespace recur::graph

#endif  // RECUR_GRAPH_IGRAPH_H_
