#ifndef RECUR_GRAPH_COMPONENTS_H_
#define RECUR_GRAPH_COMPONENTS_H_

#include <vector>

#include "graph/hybrid_graph.h"

namespace recur::graph {

/// An arc of the condensed multigraph: one original directed edge lifted to
/// the clusters of its endpoints. Self-loops (from_cluster == to_cluster)
/// and parallel arcs are common and meaningful.
struct CondensedArc {
  int from_cluster = -1;
  int to_cluster = -1;
  int edge_index = -1;   // index of the directed edge in the original graph
  int tail_vertex = -1;  // original tail (consequent variable)
  int head_vertex = -1;  // original head (antecedent variable)
};

/// The condensation of a hybrid graph: every connected component of the
/// undirected-edge subgraph becomes one *cluster*; directed edges become
/// arcs between clusters. This realizes the paper's "compression" remark
/// (§4) — undirected structure matters only through connectivity, so cycle
/// analysis on the condensation is exactly cycle analysis on the I-graph
/// with trivial cycles and parallel undirected paths collapsed.
class CondensedGraph {
 public:
  /// Builds the condensation of `g`.
  static CondensedGraph Build(const HybridGraph& g);

  int num_clusters() const { return static_cast<int>(members_.size()); }
  int cluster_of(int vertex) const { return cluster_of_[vertex]; }
  const std::vector<int>& members(int cluster) const {
    return members_[cluster];
  }
  const std::vector<CondensedArc>& arcs() const { return arcs_; }

  /// Arc indexes incident to `cluster` (self-loops appear once).
  const std::vector<int>& IncidentArcs(int cluster) const {
    return incident_[cluster];
  }

  /// True if the cluster contains at least one undirected edge (i.e. has
  /// more than one member vertex).
  bool ClusterHasUndirectedEdges(int cluster) const {
    return members_[cluster].size() > 1;
  }

  /// Weakly connected components over clusters and arcs. Returns
  /// component id per cluster; ids are dense starting at 0.
  std::vector<int> WeakComponents(int* num_components) const;

 private:
  std::vector<int> cluster_of_;
  std::vector<std::vector<int>> members_;
  std::vector<CondensedArc> arcs_;
  std::vector<std::vector<int>> incident_;
};

/// Plain union-find, used for cluster and component computation.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace recur::graph

#endif  // RECUR_GRAPH_COMPONENTS_H_
