# Empty dependencies file for bench_dependent_mixed.
# This may be replaced when dependencies are built.
