file(REMOVE_RECURSE
  "../bench/bench_dependent_mixed"
  "../bench/bench_dependent_mixed.pdb"
  "CMakeFiles/bench_dependent_mixed.dir/bench_dependent_mixed.cc.o"
  "CMakeFiles/bench_dependent_mixed.dir/bench_dependent_mixed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dependent_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
