# Empty compiler generated dependencies file for plan_bounded.
# This may be replaced when dependencies are built.
