file(REMOVE_RECURSE
  "../bench/plan_bounded"
  "../bench/plan_bounded.pdb"
  "CMakeFiles/plan_bounded.dir/plan_bounded.cc.o"
  "CMakeFiles/plan_bounded.dir/plan_bounded.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
