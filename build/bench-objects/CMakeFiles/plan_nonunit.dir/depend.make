# Empty dependencies file for plan_nonunit.
# This may be replaced when dependencies are built.
