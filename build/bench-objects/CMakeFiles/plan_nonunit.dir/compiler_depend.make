# Empty compiler generated dependencies file for plan_nonunit.
# This may be replaced when dependencies are built.
