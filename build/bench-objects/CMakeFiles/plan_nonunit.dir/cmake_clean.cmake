file(REMOVE_RECURSE
  "../bench/plan_nonunit"
  "../bench/plan_nonunit.pdb"
  "CMakeFiles/plan_nonunit.dir/plan_nonunit.cc.o"
  "CMakeFiles/plan_nonunit.dir/plan_nonunit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_nonunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
