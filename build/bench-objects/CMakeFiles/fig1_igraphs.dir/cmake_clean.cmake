file(REMOVE_RECURSE
  "../bench/fig1_igraphs"
  "../bench/fig1_igraphs.pdb"
  "CMakeFiles/fig1_igraphs.dir/fig1_igraphs.cc.o"
  "CMakeFiles/fig1_igraphs.dir/fig1_igraphs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_igraphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
