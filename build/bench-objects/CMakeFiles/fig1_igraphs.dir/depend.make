# Empty dependencies file for fig1_igraphs.
# This may be replaced when dependencies are built.
