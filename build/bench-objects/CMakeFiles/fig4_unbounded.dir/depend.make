# Empty dependencies file for fig4_unbounded.
# This may be replaced when dependencies are built.
