file(REMOVE_RECURSE
  "../bench/fig4_unbounded"
  "../bench/fig4_unbounded.pdb"
  "CMakeFiles/fig4_unbounded.dir/fig4_unbounded.cc.o"
  "CMakeFiles/fig4_unbounded.dir/fig4_unbounded.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_unbounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
