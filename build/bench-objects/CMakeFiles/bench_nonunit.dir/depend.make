# Empty dependencies file for bench_nonunit.
# This may be replaced when dependencies are built.
