file(REMOVE_RECURSE
  "../bench/bench_nonunit"
  "../bench/bench_nonunit.pdb"
  "CMakeFiles/bench_nonunit.dir/bench_nonunit.cc.o"
  "CMakeFiles/bench_nonunit.dir/bench_nonunit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
