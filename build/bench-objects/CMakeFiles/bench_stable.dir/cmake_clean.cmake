file(REMOVE_RECURSE
  "../bench/bench_stable"
  "../bench/bench_stable.pdb"
  "CMakeFiles/bench_stable.dir/bench_stable.cc.o"
  "CMakeFiles/bench_stable.dir/bench_stable.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
