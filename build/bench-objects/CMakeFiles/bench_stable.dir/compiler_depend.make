# Empty compiler generated dependencies file for bench_stable.
# This may be replaced when dependencies are built.
