file(REMOVE_RECURSE
  "../bench/bench_bounded"
  "../bench/bench_bounded.pdb"
  "CMakeFiles/bench_bounded.dir/bench_bounded.cc.o"
  "CMakeFiles/bench_bounded.dir/bench_bounded.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
