# Empty dependencies file for bench_bounded.
# This may be replaced when dependencies are built.
