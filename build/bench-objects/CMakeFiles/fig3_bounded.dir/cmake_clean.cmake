file(REMOVE_RECURSE
  "../bench/fig3_bounded"
  "../bench/fig3_bounded.pdb"
  "CMakeFiles/fig3_bounded.dir/fig3_bounded.cc.o"
  "CMakeFiles/fig3_bounded.dir/fig3_bounded.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
