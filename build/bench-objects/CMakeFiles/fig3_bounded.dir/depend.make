# Empty dependencies file for fig3_bounded.
# This may be replaced when dependencies are built.
