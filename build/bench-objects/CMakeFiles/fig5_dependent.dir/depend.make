# Empty dependencies file for fig5_dependent.
# This may be replaced when dependencies are built.
