file(REMOVE_RECURSE
  "../bench/fig5_dependent"
  "../bench/fig5_dependent.pdb"
  "CMakeFiles/fig5_dependent.dir/fig5_dependent.cc.o"
  "CMakeFiles/fig5_dependent.dir/fig5_dependent.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dependent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
