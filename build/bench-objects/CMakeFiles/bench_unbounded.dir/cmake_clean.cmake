file(REMOVE_RECURSE
  "../bench/bench_unbounded"
  "../bench/bench_unbounded.pdb"
  "CMakeFiles/bench_unbounded.dir/bench_unbounded.cc.o"
  "CMakeFiles/bench_unbounded.dir/bench_unbounded.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unbounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
