file(REMOVE_RECURSE
  "../bench/table_classification"
  "../bench/table_classification.pdb"
  "CMakeFiles/table_classification.dir/table_classification.cc.o"
  "CMakeFiles/table_classification.dir/table_classification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
