# Empty dependencies file for table_classification.
# This may be replaced when dependencies are built.
