# Empty compiler generated dependencies file for table_classification.
# This may be replaced when dependencies are built.
