file(REMOVE_RECURSE
  "../bench/fig6_mixed"
  "../bench/fig6_mixed.pdb"
  "CMakeFiles/fig6_mixed.dir/fig6_mixed.cc.o"
  "CMakeFiles/fig6_mixed.dir/fig6_mixed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
