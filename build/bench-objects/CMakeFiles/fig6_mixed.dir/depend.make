# Empty dependencies file for fig6_mixed.
# This may be replaced when dependencies are built.
