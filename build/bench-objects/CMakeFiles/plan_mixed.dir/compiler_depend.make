# Empty compiler generated dependencies file for plan_mixed.
# This may be replaced when dependencies are built.
