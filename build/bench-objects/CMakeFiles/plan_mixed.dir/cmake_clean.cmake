file(REMOVE_RECURSE
  "../bench/plan_mixed"
  "../bench/plan_mixed.pdb"
  "CMakeFiles/plan_mixed.dir/plan_mixed.cc.o"
  "CMakeFiles/plan_mixed.dir/plan_mixed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
