# Empty compiler generated dependencies file for fig2_resolution.
# This may be replaced when dependencies are built.
