file(REMOVE_RECURSE
  "../bench/fig2_resolution"
  "../bench/fig2_resolution.pdb"
  "CMakeFiles/fig2_resolution.dir/fig2_resolution.cc.o"
  "CMakeFiles/fig2_resolution.dir/fig2_resolution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
