# Empty dependencies file for plan_dependent.
# This may be replaced when dependencies are built.
