# Empty compiler generated dependencies file for plan_dependent.
# This may be replaced when dependencies are built.
