file(REMOVE_RECURSE
  "../bench/plan_dependent"
  "../bench/plan_dependent.pdb"
  "CMakeFiles/plan_dependent.dir/plan_dependent.cc.o"
  "CMakeFiles/plan_dependent.dir/plan_dependent.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_dependent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
