file(REMOVE_RECURSE
  "../bench/plan_unbounded"
  "../bench/plan_unbounded.pdb"
  "CMakeFiles/plan_unbounded.dir/plan_unbounded.cc.o"
  "CMakeFiles/plan_unbounded.dir/plan_unbounded.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_unbounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
