# Empty compiler generated dependencies file for plan_unbounded.
# This may be replaced when dependencies are built.
