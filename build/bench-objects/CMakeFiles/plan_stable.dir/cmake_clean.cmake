file(REMOVE_RECURSE
  "../bench/plan_stable"
  "../bench/plan_stable.pdb"
  "CMakeFiles/plan_stable.dir/plan_stable.cc.o"
  "CMakeFiles/plan_stable.dir/plan_stable.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_stable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
