# Empty dependencies file for plan_stable.
# This may be replaced when dependencies are built.
