
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/paper_examples.cc" "src/CMakeFiles/recur.dir/catalog/paper_examples.cc.o" "gcc" "src/CMakeFiles/recur.dir/catalog/paper_examples.cc.o.d"
  "/root/repo/src/classify/boundedness.cc" "src/CMakeFiles/recur.dir/classify/boundedness.cc.o" "gcc" "src/CMakeFiles/recur.dir/classify/boundedness.cc.o.d"
  "/root/repo/src/classify/classifier.cc" "src/CMakeFiles/recur.dir/classify/classifier.cc.o" "gcc" "src/CMakeFiles/recur.dir/classify/classifier.cc.o.d"
  "/root/repo/src/classify/program_analysis.cc" "src/CMakeFiles/recur.dir/classify/program_analysis.cc.o" "gcc" "src/CMakeFiles/recur.dir/classify/program_analysis.cc.o.d"
  "/root/repo/src/classify/stability.cc" "src/CMakeFiles/recur.dir/classify/stability.cc.o" "gcc" "src/CMakeFiles/recur.dir/classify/stability.cc.o.d"
  "/root/repo/src/classify/taxonomy.cc" "src/CMakeFiles/recur.dir/classify/taxonomy.cc.o" "gcc" "src/CMakeFiles/recur.dir/classify/taxonomy.cc.o.d"
  "/root/repo/src/datalog/atom.cc" "src/CMakeFiles/recur.dir/datalog/atom.cc.o" "gcc" "src/CMakeFiles/recur.dir/datalog/atom.cc.o.d"
  "/root/repo/src/datalog/expansion.cc" "src/CMakeFiles/recur.dir/datalog/expansion.cc.o" "gcc" "src/CMakeFiles/recur.dir/datalog/expansion.cc.o.d"
  "/root/repo/src/datalog/lexer.cc" "src/CMakeFiles/recur.dir/datalog/lexer.cc.o" "gcc" "src/CMakeFiles/recur.dir/datalog/lexer.cc.o.d"
  "/root/repo/src/datalog/linear_rule.cc" "src/CMakeFiles/recur.dir/datalog/linear_rule.cc.o" "gcc" "src/CMakeFiles/recur.dir/datalog/linear_rule.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/CMakeFiles/recur.dir/datalog/parser.cc.o" "gcc" "src/CMakeFiles/recur.dir/datalog/parser.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/CMakeFiles/recur.dir/datalog/program.cc.o" "gcc" "src/CMakeFiles/recur.dir/datalog/program.cc.o.d"
  "/root/repo/src/datalog/rule.cc" "src/CMakeFiles/recur.dir/datalog/rule.cc.o" "gcc" "src/CMakeFiles/recur.dir/datalog/rule.cc.o.d"
  "/root/repo/src/datalog/substitution.cc" "src/CMakeFiles/recur.dir/datalog/substitution.cc.o" "gcc" "src/CMakeFiles/recur.dir/datalog/substitution.cc.o.d"
  "/root/repo/src/datalog/term.cc" "src/CMakeFiles/recur.dir/datalog/term.cc.o" "gcc" "src/CMakeFiles/recur.dir/datalog/term.cc.o.d"
  "/root/repo/src/datalog/unify.cc" "src/CMakeFiles/recur.dir/datalog/unify.cc.o" "gcc" "src/CMakeFiles/recur.dir/datalog/unify.cc.o.d"
  "/root/repo/src/eval/chain.cc" "src/CMakeFiles/recur.dir/eval/chain.cc.o" "gcc" "src/CMakeFiles/recur.dir/eval/chain.cc.o.d"
  "/root/repo/src/eval/compiled_eval.cc" "src/CMakeFiles/recur.dir/eval/compiled_eval.cc.o" "gcc" "src/CMakeFiles/recur.dir/eval/compiled_eval.cc.o.d"
  "/root/repo/src/eval/conjunctive.cc" "src/CMakeFiles/recur.dir/eval/conjunctive.cc.o" "gcc" "src/CMakeFiles/recur.dir/eval/conjunctive.cc.o.d"
  "/root/repo/src/eval/naive.cc" "src/CMakeFiles/recur.dir/eval/naive.cc.o" "gcc" "src/CMakeFiles/recur.dir/eval/naive.cc.o.d"
  "/root/repo/src/eval/plan_generator.cc" "src/CMakeFiles/recur.dir/eval/plan_generator.cc.o" "gcc" "src/CMakeFiles/recur.dir/eval/plan_generator.cc.o.d"
  "/root/repo/src/eval/query.cc" "src/CMakeFiles/recur.dir/eval/query.cc.o" "gcc" "src/CMakeFiles/recur.dir/eval/query.cc.o.d"
  "/root/repo/src/eval/rank.cc" "src/CMakeFiles/recur.dir/eval/rank.cc.o" "gcc" "src/CMakeFiles/recur.dir/eval/rank.cc.o.d"
  "/root/repo/src/eval/seminaive.cc" "src/CMakeFiles/recur.dir/eval/seminaive.cc.o" "gcc" "src/CMakeFiles/recur.dir/eval/seminaive.cc.o.d"
  "/root/repo/src/eval/special_plans.cc" "src/CMakeFiles/recur.dir/eval/special_plans.cc.o" "gcc" "src/CMakeFiles/recur.dir/eval/special_plans.cc.o.d"
  "/root/repo/src/graph/components.cc" "src/CMakeFiles/recur.dir/graph/components.cc.o" "gcc" "src/CMakeFiles/recur.dir/graph/components.cc.o.d"
  "/root/repo/src/graph/cycles.cc" "src/CMakeFiles/recur.dir/graph/cycles.cc.o" "gcc" "src/CMakeFiles/recur.dir/graph/cycles.cc.o.d"
  "/root/repo/src/graph/hybrid_graph.cc" "src/CMakeFiles/recur.dir/graph/hybrid_graph.cc.o" "gcc" "src/CMakeFiles/recur.dir/graph/hybrid_graph.cc.o.d"
  "/root/repo/src/graph/igraph.cc" "src/CMakeFiles/recur.dir/graph/igraph.cc.o" "gcc" "src/CMakeFiles/recur.dir/graph/igraph.cc.o.d"
  "/root/repo/src/graph/paths.cc" "src/CMakeFiles/recur.dir/graph/paths.cc.o" "gcc" "src/CMakeFiles/recur.dir/graph/paths.cc.o.d"
  "/root/repo/src/graph/render.cc" "src/CMakeFiles/recur.dir/graph/render.cc.o" "gcc" "src/CMakeFiles/recur.dir/graph/render.cc.o.d"
  "/root/repo/src/graph/resolution_graph.cc" "src/CMakeFiles/recur.dir/graph/resolution_graph.cc.o" "gcc" "src/CMakeFiles/recur.dir/graph/resolution_graph.cc.o.d"
  "/root/repo/src/ra/database.cc" "src/CMakeFiles/recur.dir/ra/database.cc.o" "gcc" "src/CMakeFiles/recur.dir/ra/database.cc.o.d"
  "/root/repo/src/ra/operators.cc" "src/CMakeFiles/recur.dir/ra/operators.cc.o" "gcc" "src/CMakeFiles/recur.dir/ra/operators.cc.o.d"
  "/root/repo/src/ra/relation.cc" "src/CMakeFiles/recur.dir/ra/relation.cc.o" "gcc" "src/CMakeFiles/recur.dir/ra/relation.cc.o.d"
  "/root/repo/src/transform/bounded_expand.cc" "src/CMakeFiles/recur.dir/transform/bounded_expand.cc.o" "gcc" "src/CMakeFiles/recur.dir/transform/bounded_expand.cc.o.d"
  "/root/repo/src/transform/compiled_expr.cc" "src/CMakeFiles/recur.dir/transform/compiled_expr.cc.o" "gcc" "src/CMakeFiles/recur.dir/transform/compiled_expr.cc.o.d"
  "/root/repo/src/transform/stable_form.cc" "src/CMakeFiles/recur.dir/transform/stable_form.cc.o" "gcc" "src/CMakeFiles/recur.dir/transform/stable_form.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/recur.dir/util/status.cc.o" "gcc" "src/CMakeFiles/recur.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/recur.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/recur.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/symbol_table.cc" "src/CMakeFiles/recur.dir/util/symbol_table.cc.o" "gcc" "src/CMakeFiles/recur.dir/util/symbol_table.cc.o.d"
  "/root/repo/src/workload/formula_generator.cc" "src/CMakeFiles/recur.dir/workload/formula_generator.cc.o" "gcc" "src/CMakeFiles/recur.dir/workload/formula_generator.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/recur.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/recur.dir/workload/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
