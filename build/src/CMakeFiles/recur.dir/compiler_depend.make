# Empty compiler generated dependencies file for recur.
# This may be replaced when dependencies are built.
