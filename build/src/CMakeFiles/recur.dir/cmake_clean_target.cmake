file(REMOVE_RECURSE
  "librecur.a"
)
