# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/expansion_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/classifier_test[1]_include.cmake")
include("/root/repo/build/tests/ra_test[1]_include.cmake")
include("/root/repo/build/tests/eval_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/compiled_eval_test[1]_include.cmake")
include("/root/repo/build/tests/special_plans_test[1]_include.cmake")
include("/root/repo/build/tests/plan_generator_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/rank_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/program_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/conjunctive_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
