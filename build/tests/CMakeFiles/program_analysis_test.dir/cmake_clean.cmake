file(REMOVE_RECURSE
  "CMakeFiles/program_analysis_test.dir/program_analysis_test.cc.o"
  "CMakeFiles/program_analysis_test.dir/program_analysis_test.cc.o.d"
  "program_analysis_test"
  "program_analysis_test.pdb"
  "program_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
