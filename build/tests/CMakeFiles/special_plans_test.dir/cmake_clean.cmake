file(REMOVE_RECURSE
  "CMakeFiles/special_plans_test.dir/special_plans_test.cc.o"
  "CMakeFiles/special_plans_test.dir/special_plans_test.cc.o.d"
  "special_plans_test"
  "special_plans_test.pdb"
  "special_plans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/special_plans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
