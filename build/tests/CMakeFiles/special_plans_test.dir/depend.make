# Empty dependencies file for special_plans_test.
# This may be replaced when dependencies are built.
