# Empty dependencies file for plan_generator_test.
# This may be replaced when dependencies are built.
