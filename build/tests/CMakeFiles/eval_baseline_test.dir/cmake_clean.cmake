file(REMOVE_RECURSE
  "CMakeFiles/eval_baseline_test.dir/eval_baseline_test.cc.o"
  "CMakeFiles/eval_baseline_test.dir/eval_baseline_test.cc.o.d"
  "eval_baseline_test"
  "eval_baseline_test.pdb"
  "eval_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
