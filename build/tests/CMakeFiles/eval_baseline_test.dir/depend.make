# Empty dependencies file for eval_baseline_test.
# This may be replaced when dependencies are built.
