# Empty dependencies file for corporate_db.
# This may be replaced when dependencies are built.
