file(REMOVE_RECURSE
  "CMakeFiles/corporate_db.dir/corporate_db.cpp.o"
  "CMakeFiles/corporate_db.dir/corporate_db.cpp.o.d"
  "corporate_db"
  "corporate_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corporate_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
