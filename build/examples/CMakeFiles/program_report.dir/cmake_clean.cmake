file(REMOVE_RECURSE
  "CMakeFiles/program_report.dir/program_report.cpp.o"
  "CMakeFiles/program_report.dir/program_report.cpp.o.d"
  "program_report"
  "program_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
