# Empty dependencies file for program_report.
# This may be replaced when dependencies are built.
